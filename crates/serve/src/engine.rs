//! The in-process annotation engine: shared artifacts, a bounded job queue,
//! and a pool of worker threads.
//!
//! Architecture (cf. the one-shot CLI path in `gana-core`):
//!
//! ```text
//!  submit()/submit_blocking()         workers (N threads)
//!  ───────────────┐                   ┌──────────────────┐
//!   JobRequest ──▶│ bounded channel ─▶│ parse → recognize │──▶ reply channel
//!                 │  (backpressure)   │  (Arc'd pipeline) │     JobHandle
//!  ───────────────┘                   └──────────────────┘
//! ```
//!
//! * The GCN model and primitive library are loaded **once** and shared via
//!   the `Arc`s inside [`Pipeline`]; workers clone the pipeline handle, not
//!   the artifacts.
//! * The submission queue is a bounded MPMC channel. [`Engine::submit`]
//!   never blocks — a full queue returns [`SubmitError::QueueFull`] so the
//!   caller can shed load; [`Engine::submit_blocking`] waits instead.
//! * Workers pull from the shared queue (work sharing — an idle worker
//!   "steals" the next job the moment it frees up, so load balances without
//!   per-worker queues).
//! * Identical `(task, netlist)` submissions are answered from a bounded
//!   result cache without occupying a worker. Failed jobs are never cached.

use crate::channel;
use crate::job::{Annotation, Job, JobError, JobHandle, JobRequest, JobResult, SubmitError, Work};
use crate::metrics::{Metrics, SnapshotGauge, StatsSnapshot, WorkspaceStats};
use gana_core::{Pipeline, Task, Workspace};
use gana_gnn::{BasisCache, GraphSample, Kernel};
use gana_graph::CircuitGraph;
use gana_incremental::{Baseline, CachedBlock, IncrementalPipeline, RegionCache};
use gana_netlist::{flatten, parse_library, Circuit};
use gana_par::Parallelism;
use gana_persist::{EngineSnapshot, ModelEntry, PersistError};
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, VecDeque};
use std::hash::{Hash, Hasher};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Engine tuning knobs.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker threads. Defaults to available parallelism.
    pub workers: usize,
    /// Bounded submission-queue capacity; beyond it, `submit` rejects with
    /// [`SubmitError::QueueFull`].
    pub queue_capacity: usize,
    /// Entries kept in the `(task, netlist) → Annotation` result cache;
    /// `0` disables caching.
    pub result_cache_capacity: usize,
    /// Byte budget of the content-addressed region cache shared by every
    /// incremental session.
    pub region_cache_bytes: usize,
    /// Maximum concurrently open incremental sessions. Each session pins a
    /// full baseline (recognized design + splice indexes) in memory, so the
    /// map must stay bounded; an `open` past the limit is rejected with a
    /// structured [`JobError::SessionLimit`].
    pub max_sessions: usize,
    /// Intra-request thread budget per worker (`0` = auto). Auto divides the
    /// machine between the request-level workers and each request's internal
    /// parallelism via [`gana_par::joint_budget`], so
    /// `workers × intra_threads` never oversubscribes the box. Explicit
    /// values are capped to that same joint budget.
    pub intra_threads: usize,
    /// Largest fused GCN micro-batch a worker assembles from queued
    /// annotate jobs of the same task. `1` (the default) disables batching
    /// entirely; results are byte-identical either way.
    pub max_batch: usize,
    /// How long (µs) a worker holding a partial batch may wait for more
    /// compatible jobs before flushing. `0` means flush as soon as the
    /// queue runs dry (drain-only batching). The wait is always capped by
    /// the earliest deadline among the batch members, so batching never
    /// delays a job past its deadline.
    pub batch_window_us: u64,
    /// When true, ignore the fixed `batch_window_us` and derive the gather
    /// window per batch from the observed arrival-gap EMA: wait roughly as
    /// long as the missing batch slots are expected to take to arrive,
    /// never more than half the mean service time (so batching adds at
    /// most ~50% latency) and never more than 5 ms. With no traffic
    /// history, or with a full batch already queued, the window is 0.
    pub batch_window_auto: bool,
    /// Byte budget of the shared topology-keyed Chebyshev basis cache
    /// (`0` disables it). Cache reuse is byte-identical to recomputation —
    /// the key is a content hash of the Laplacian, input features, and tap
    /// count — so the knob trades memory for latency only.
    pub basis_cache_bytes: usize,
    /// When true, every registered pipeline serves from int8-quantized GCN
    /// weights (per-output-channel affine, dequantize-on-accumulate).
    pub quantized: bool,
}

/// Default byte budget of the shared Chebyshev basis cache (32 MiB).
pub const DEFAULT_BASIS_CACHE_BYTES: usize = 32 << 20;

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 256,
            result_cache_capacity: 1024,
            region_cache_bytes: IncrementalPipeline::DEFAULT_CACHE_BYTES,
            max_sessions: 64,
            intra_threads: 0,
            max_batch: 1,
            batch_window_us: 0,
            batch_window_auto: false,
            basis_cache_bytes: DEFAULT_BASIS_CACHE_BYTES,
            quantized: false,
        }
    }
}

/// Map + FIFO insertion order, guarded together so eviction stays consistent.
type CacheState = (HashMap<u64, Arc<Annotation>>, VecDeque<u64>);

/// Bounded FIFO-eviction map from request hash to cached annotation.
#[derive(Debug)]
struct ResultCache {
    capacity: usize,
    map: Mutex<CacheState>,
}

impl ResultCache {
    fn new(capacity: usize) -> ResultCache {
        ResultCache {
            capacity,
            map: Mutex::new((HashMap::new(), VecDeque::new())),
        }
    }

    fn get(&self, key: u64) -> Option<Arc<Annotation>> {
        self.map.lock().0.get(&key).cloned()
    }

    fn insert(&self, key: u64, value: Arc<Annotation>) {
        let mut guard = self.map.lock();
        let (map, order) = &mut *guard;
        if map.insert(key, value).is_none() {
            order.push_back(key);
            while map.len() > self.capacity {
                if let Some(evict) = order.pop_front() {
                    map.remove(&evict);
                } else {
                    break;
                }
            }
        }
    }
}

/// Resolves the per-worker intra-request thread budget: `0` asks for the
/// automatic [`gana_par::joint_budget`]; explicit requests are honored but
/// capped to that same budget, so `workers × intra` can never oversubscribe
/// the machine regardless of configuration.
fn effective_intra_threads(workers: usize, requested: usize, cores: usize) -> usize {
    let cap = gana_par::joint_budget(workers, cores);
    if requested == 0 {
        cap
    } else {
        requested.min(cap).max(1)
    }
}

fn cache_key(task: Task, netlist: &str) -> u64 {
    let mut hasher = DefaultHasher::new();
    // Task isn't Hash; its Debug form is stable and two-valued.
    format!("{task:?}").hash(&mut hasher);
    netlist.hash(&mut hasher);
    hasher.finish()
}

/// Baseline state of one open session.
struct SessionState {
    task: Task,
    baseline: Baseline,
}

/// One queued same-session update, carrying everything needed to finish
/// the job from whichever worker drains it.
struct PendingUpdate {
    netlist: String,
    submitted_at: Instant,
    deadline: Option<Instant>,
    cancelled: Arc<AtomicBool>,
    reply: channel::Sender<JobResult>,
}

/// One open session. Same-session updates land in `pending` and are
/// drained by at most one worker at a time (`draining`), so a burst of
/// updates for one session occupies one worker instead of blocking the
/// whole pool on `state`; distinct sessions still run in parallel.
struct SessionSlot {
    state: Mutex<SessionState>,
    pending: Mutex<VecDeque<PendingUpdate>>,
    draining: AtomicBool,
    /// Heap bytes of the baseline's unified circuit store (graph + CCC +
    /// coarsening + hierarchy slabs), refreshed whenever the baseline
    /// advances. A gauge so `stats` never contends with a draining worker.
    store_bytes: AtomicU64,
}

/// Snapshot persistence state shared across the engine.
#[derive(Debug, Default)]
struct PersistState {
    /// Where periodic/drain snapshots are written; `None` disables saving.
    path: Option<PathBuf>,
    /// When the last successful save finished.
    last_save: Mutex<Option<Instant>>,
    /// Bytes of the last written snapshot.
    bytes: AtomicU64,
    /// True when the engine was built from a snapshot (`warm_from`).
    warm_start: AtomicBool,
    /// Ensures the drain-time snapshot runs once even though `shutdown`
    /// is idempotent and also called from `Drop`.
    drain_saved: AtomicBool,
    /// Serializes writers: the periodic snapshot thread and the drain-time
    /// save share one `.tmp` staging file, so concurrent saves would
    /// rename each other's half-written output into place.
    save_lock: Mutex<()>,
}

/// Ceiling on the auto-tuned batch gather window. Even under pathological
/// EMA readings, batching never holds a job longer than this.
const MAX_AUTO_WINDOW_NS: u64 = 5_000_000;

/// Pending same-session updates one drain runs before yielding the worker
/// back to the shared queue via a [`Work::DrainSession`] marker, so a
/// burst of edits on one session cannot monopolize a worker while other
/// sessions' jobs sit queued behind it.
const SESSION_DRAIN_QUANTUM: usize = 4;

/// Backoff hint for an [`SubmitError::Overloaded`] rejection: how long
/// until the estimated queue wait should have fallen back under the
/// deadline, never less than 1 ms so clients always pause.
fn retry_after_ms(estimated_wait: Duration, deadline: Duration) -> u64 {
    (estimated_wait.saturating_sub(deadline).as_millis() as u64).max(1)
}

/// Racy-but-harmless exponential moving average (α = 1/8). `0` is the
/// "no samples yet" sentinel, so updates clamp to at least 1.
fn ema_update(cell: &AtomicU64, sample: u64) {
    let old = cell.load(Ordering::Relaxed);
    let next = if old == 0 {
        sample
    } else {
        old - old / 8 + sample / 8
    };
    cell.store(next.max(1), Ordering::Relaxed);
}

struct Shared {
    pipelines: Vec<(Task, Pipeline)>,
    incremental: Vec<(Task, IncrementalPipeline)>,
    /// One budget clone per engine: every pipeline shares its gauge, so
    /// `stats` sees aggregate intra-request pool pressure across workers.
    intra: Parallelism,
    /// One annotation workspace per worker thread: scratch buffers survive
    /// across that worker's requests, and `stats` aggregates the prune
    /// counters and high-water footprints across the pool.
    workspaces: Vec<Arc<Workspace>>,
    region_cache: Arc<RegionCache>,
    /// Shared Chebyshev basis cache, `None` when disabled by config. The
    /// handle exists for `stats`; pipelines carry their own clones.
    basis_cache: Option<Arc<BasisCache>>,
    sessions: Mutex<HashMap<u64, Arc<SessionSlot>>>,
    max_sessions: usize,
    metrics: Metrics,
    cache: Option<ResultCache>,
    shutting_down: AtomicBool,
    next_id: AtomicU64,
    workers: usize,
    max_batch: usize,
    batch_window_us: u64,
    batch_window_auto: bool,
    /// Per-job service time EMA (ns), fed by every processed job; `0`
    /// until the first job completes. Drives load shedding and the auto
    /// batch window.
    service_ema_ns: AtomicU64,
    /// EMA of the gap between consecutive accepted submissions (ns); `0`
    /// until two arrivals have been seen.
    arrival_gap_ns: AtomicU64,
    /// Monotonic timestamp (ns since `started`) of the last accepted
    /// submission; `0` = none yet.
    last_arrival_ns: AtomicU64,
    /// Engine construction time — the epoch for `last_arrival_ns`.
    started: Instant,
    /// Sender clone workers use to re-enqueue [`Work::DrainSession`]
    /// fairness markers. Taken (dropped) at shutdown along with the main
    /// sender so the channel still disconnects and workers exit.
    requeue_tx: Mutex<Option<channel::Sender<Job>>>,
    persist: PersistState,
}

impl Shared {
    fn pipeline(&self, task: Task) -> Option<&Pipeline> {
        self.pipelines
            .iter()
            .find(|(t, _)| *t == task)
            .map(|(_, p)| p)
    }

    fn incremental(&self, task: Task) -> Option<&IncrementalPipeline> {
        self.incremental
            .iter()
            .find(|(t, _)| *t == task)
            .map(|(_, p)| p)
    }

    /// Feeds the arrival-gap EMA from one accepted submission.
    fn note_arrival(&self) {
        let now_ns = self.started.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        let prev = self.last_arrival_ns.swap(now_ns.max(1), Ordering::Relaxed);
        if prev != 0 && now_ns > prev {
            ema_update(&self.arrival_gap_ns, now_ns - prev);
        }
    }

    /// Feeds the service-time EMA with `elapsed` worker time spent over
    /// `jobs` finished jobs (batches amortize).
    fn note_service(&self, elapsed: Duration, jobs: u64) {
        if jobs == 0 {
            return;
        }
        let per = (elapsed.as_nanos().min(u128::from(u64::MAX)) as u64) / jobs;
        ema_update(&self.service_ema_ns, per);
    }

    /// Expected queue wait for a submission arriving now: queued jobs times
    /// the mean service time, spread over the worker pool. `None` until the
    /// service EMA has a sample or when the queue is empty (a free or
    /// soon-free worker picks it up — don't shed on an idle engine).
    fn estimated_queue_wait(&self, queue_depth: usize) -> Option<Duration> {
        let svc = self.service_ema_ns.load(Ordering::Relaxed);
        if svc == 0 || queue_depth == 0 {
            return None;
        }
        let wait_ns = svc.saturating_mul(queue_depth as u64) / self.workers.max(1) as u64;
        Some(Duration::from_nanos(wait_ns))
    }

    /// The gather window for a batch starting with `queued` jobs already
    /// waiting behind it. Fixed mode returns the configured window; auto
    /// mode waits only as long as the missing slots are expected to take
    /// to arrive (arrival-gap EMA), capped at half the mean service time
    /// and at [`MAX_AUTO_WINDOW_NS`].
    fn effective_batch_window_us(&self, queued: usize) -> u64 {
        if !self.batch_window_auto {
            return self.batch_window_us;
        }
        if queued + 1 >= self.max_batch {
            return 0; // a full batch is already waiting: flush immediately
        }
        let gap = self.arrival_gap_ns.load(Ordering::Relaxed);
        if gap == 0 {
            return 0; // no traffic history: don't hold the first jobs hostage
        }
        let missing = (self.max_batch - 1 - queued) as u64;
        let svc = self.service_ema_ns.load(Ordering::Relaxed);
        let cap_ns = if svc == 0 {
            MAX_AUTO_WINDOW_NS
        } else {
            (svc / 2).min(MAX_AUTO_WINDOW_NS)
        };
        gap.saturating_mul(missing).min(cap_ns) / 1_000
    }
}

/// Builder for [`Engine`].
#[derive(Debug, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
    pipelines: Vec<(Task, Pipeline)>,
    snapshot_path: Option<PathBuf>,
    seed_cache: Vec<(u128, CachedBlock)>,
    warm_start: bool,
}

impl EngineBuilder {
    /// Starts from a config.
    pub fn with_config(config: EngineConfig) -> EngineBuilder {
        EngineBuilder {
            config,
            pipelines: Vec::new(),
            snapshot_path: None,
            seed_cache: Vec::new(),
            warm_start: false,
        }
    }

    /// Sets where [`Engine::save_snapshot`] writes the engine snapshot.
    /// Without a path, `save_snapshot` is a no-op returning `Ok(None)`.
    pub fn snapshot_path(mut self, path: impl Into<PathBuf>) -> EngineBuilder {
        self.snapshot_path = Some(path.into());
        self
    }

    /// Boots the engine from a persisted [`EngineSnapshot`]: every model in
    /// the snapshot becomes a registered pipeline sharing the snapshot's
    /// primitive library, and the persisted region-cache entries are warm
    /// loaded so the first incremental sessions splice instead of recompute.
    pub fn warm_from(mut self, snapshot: EngineSnapshot) -> EngineBuilder {
        let library = Arc::new(snapshot.library);
        for entry in snapshot.models {
            let pipeline = Pipeline::shared(
                Arc::new(entry.model),
                entry.class_names.into(),
                Arc::clone(&library),
                entry.task,
            );
            self = self.pipeline(pipeline);
        }
        self.seed_cache = snapshot.cache_entries;
        self.warm_start = true;
        self
    }

    /// Registers the pipeline serving `task` requests. The pipeline's
    /// artifacts stay shared; registering the same model for both tasks
    /// costs nothing extra.
    pub fn pipeline(mut self, pipeline: Pipeline) -> EngineBuilder {
        let task = pipeline.task();
        self.pipelines.retain(|(t, _)| *t != task);
        self.pipelines.push((task, pipeline));
        self
    }

    /// Overrides the worker count.
    pub fn workers(mut self, workers: usize) -> EngineBuilder {
        self.config.workers = workers.max(1);
        self
    }

    /// Overrides the queue capacity.
    pub fn queue_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.config.queue_capacity = capacity.max(1);
        self
    }

    /// Overrides the result-cache capacity (`0` disables).
    pub fn result_cache_capacity(mut self, capacity: usize) -> EngineBuilder {
        self.config.result_cache_capacity = capacity;
        self
    }

    /// Overrides the region-cache byte budget shared by all sessions.
    pub fn region_cache_bytes(mut self, bytes: usize) -> EngineBuilder {
        self.config.region_cache_bytes = bytes.max(1);
        self
    }

    /// Overrides the open-session limit.
    pub fn max_sessions(mut self, max: usize) -> EngineBuilder {
        self.config.max_sessions = max.max(1);
        self
    }

    /// Overrides the per-worker intra-request thread budget (`0` = auto).
    /// The effective value is always capped so `workers × intra` stays
    /// within the machine's joint budget.
    pub fn intra_threads(mut self, threads: usize) -> EngineBuilder {
        self.config.intra_threads = threads;
        self
    }

    /// Overrides the largest fused annotate micro-batch (`1`, the default,
    /// disables batching).
    pub fn max_batch(mut self, max_batch: usize) -> EngineBuilder {
        self.config.max_batch = max_batch.max(1);
        self
    }

    /// Overrides the batch gather window in microseconds (`0` = flush as
    /// soon as the queue runs dry). The wait is always capped by the
    /// earliest deadline among the gathered jobs.
    pub fn batch_window_us(mut self, window_us: u64) -> EngineBuilder {
        self.config.batch_window_us = window_us;
        self.config.batch_window_auto = false;
        self
    }

    /// Auto-tunes the batch gather window from observed traffic instead of
    /// a fixed `batch_window_us`: each batch waits roughly as long as its
    /// missing slots are expected to take to arrive (arrival-gap EMA),
    /// capped at half the mean service time and at 5 ms.
    pub fn batch_window_auto(mut self) -> EngineBuilder {
        self.config.batch_window_auto = true;
        self
    }

    /// Overrides the shared Chebyshev basis-cache byte budget (`0`
    /// disables the cache entirely).
    pub fn basis_cache_bytes(mut self, bytes: usize) -> EngineBuilder {
        self.config.basis_cache_bytes = bytes;
        self
    }

    /// Serves every registered pipeline from int8-quantized GCN weights.
    /// Predictions may differ from f64 within the per-channel quantization
    /// error bound; callers gate this on an accuracy check (see
    /// `gana serve --quantized`).
    pub fn quantized(mut self, quantized: bool) -> EngineBuilder {
        self.config.quantized = quantized;
        self
    }

    /// Forces the spmm/axpy kernel variant for this process instead of the
    /// startup CPU-feature detection (equivalent to setting `GANA_KERNEL`).
    /// Process-global: the dispatcher is shared by everything in-process,
    /// not just this engine. Falls back to `scalar` if the requested
    /// variant is not runnable on this CPU.
    pub fn kernel(self, kernel: Kernel) -> EngineBuilder {
        gana_gnn::kernel::force(Some(kernel));
        self
    }

    /// Spawns the worker pool and returns the running engine.
    pub fn build(self) -> Engine {
        let workers = self.config.workers.max(1);
        let intra = Parallelism::new(effective_intra_threads(
            workers,
            self.config.intra_threads,
            gana_par::available_threads(),
        ));
        let basis_cache = (self.config.basis_cache_bytes > 0)
            .then(|| Arc::new(BasisCache::new(self.config.basis_cache_bytes)));
        // Clone the shared budget into every registered pipeline: clones
        // share one gauge, so stats aggregate across all workers. The same
        // pass applies the engine-wide inference options: one shared basis
        // cache across all pipelines and workers, and the quantized weight
        // path when configured.
        let quantized = self.config.quantized;
        let pipelines: Vec<(Task, Pipeline)> = self
            .pipelines
            .into_iter()
            .map(|(task, pipeline)| {
                let mut pipeline = pipeline.with_parallelism(intra.clone());
                if quantized {
                    pipeline = pipeline.with_quantized();
                }
                if let Some(cache) = &basis_cache {
                    pipeline = pipeline.with_basis_cache(Arc::clone(cache));
                }
                (task, pipeline)
            })
            .collect();
        let region_cache = Arc::new(RegionCache::new(self.config.region_cache_bytes));
        region_cache.restore(self.seed_cache);
        let incremental = pipelines
            .iter()
            .map(|(task, pipeline)| {
                (
                    *task,
                    IncrementalPipeline::with_cache(pipeline.clone(), Arc::clone(&region_cache)),
                )
            })
            .collect();
        let workspaces = (0..workers).map(|_| Arc::new(Workspace::new())).collect();
        let shared = Arc::new(Shared {
            pipelines,
            incremental,
            intra,
            workspaces,
            region_cache,
            basis_cache,
            sessions: Mutex::new(HashMap::new()),
            max_sessions: self.config.max_sessions,
            metrics: Metrics::default(),
            cache: (self.config.result_cache_capacity > 0)
                .then(|| ResultCache::new(self.config.result_cache_capacity)),
            shutting_down: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            workers,
            max_batch: self.config.max_batch.max(1),
            batch_window_us: self.config.batch_window_us,
            batch_window_auto: self.config.batch_window_auto,
            service_ema_ns: AtomicU64::new(0),
            arrival_gap_ns: AtomicU64::new(0),
            last_arrival_ns: AtomicU64::new(0),
            started: Instant::now(),
            requeue_tx: Mutex::new(None),
            persist: PersistState {
                path: self.snapshot_path,
                warm_start: AtomicBool::new(self.warm_start),
                ..Default::default()
            },
        });
        let (tx, rx) = channel::bounded::<Job>(self.config.queue_capacity);
        *shared.requeue_tx.lock() = Some(tx.clone());
        let handles = (0..workers)
            .map(|worker_id| {
                let rx = rx.clone();
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gana-serve-worker-{worker_id}"))
                    .spawn(move || worker_loop(&shared, worker_id, &rx))
                    .expect("spawn worker thread")
            })
            .collect();
        Engine {
            shared,
            submit_tx: Mutex::new(Some(tx)),
            queue_rx: rx,
            handles: Mutex::new(handles),
        }
    }
}

/// The concurrent annotation service core. See the module docs for the
/// data-flow picture.
pub struct Engine {
    shared: Arc<Shared>,
    /// `None` once shutdown started; dropping the sender is what lets
    /// workers drain the queue and observe disconnection.
    submit_tx: Mutex<Option<channel::Sender<Job>>>,
    /// Kept for queue-depth introspection.
    queue_rx: channel::Receiver<Job>,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl std::fmt::Debug for Engine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Engine")
            .field("workers", &self.shared.workers)
            .field("queue_depth", &self.queue_rx.len())
            .finish()
    }
}

impl Engine {
    /// Builder entry point.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Non-blocking submit: a full queue is an immediate
    /// [`SubmitError::QueueFull`] — the backpressure contract.
    pub fn submit(&self, request: JobRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(request, false)
    }

    /// Blocking submit: waits for queue space instead of rejecting.
    pub fn submit_blocking(&self, request: JobRequest) -> Result<JobHandle, SubmitError> {
        self.submit_inner(request, true)
    }

    /// Submits a batch, amortizing queue locking; per-job admission results.
    /// Jobs are enqueued in order; a `QueueFull` for one entry does not
    /// abort the rest.
    pub fn submit_batch(&self, requests: Vec<JobRequest>) -> Vec<Result<JobHandle, SubmitError>> {
        requests.into_iter().map(|r| self.submit(r)).collect()
    }

    fn submit_inner(&self, request: JobRequest, blocking: bool) -> Result<JobHandle, SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }

        // Cache fast path: answer without a worker round-trip.
        if let Some(cache) = &self.shared.cache {
            if let Some(hit) = cache.get(cache_key(request.task, &request.netlist)) {
                self.shared
                    .metrics
                    .cache_hits
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared
                    .metrics
                    .completed
                    .fetch_add(1, Ordering::Relaxed);
                let (tx, rx) = channel::bounded(1);
                let _ = tx.send(Ok(hit));
                return Ok(JobHandle {
                    id: self.shared.next_id.fetch_add(1, Ordering::Relaxed),
                    cancelled: Arc::new(AtomicBool::new(false)),
                    rx,
                });
            }
        }

        // Deadline-aware shed: when the expected queue wait alone already
        // blows the deadline, queueing the job would burn a worker on work
        // that expires anyway. Reject up front with a retry hint instead.
        if let Some(deadline) = request.deadline {
            if let Some(wait) = self.shared.estimated_queue_wait(self.queue_rx.len()) {
                if wait > deadline {
                    self.shared.metrics.shed.fetch_add(1, Ordering::Relaxed);
                    return Err(SubmitError::Overloaded {
                        retry_after_ms: retry_after_ms(wait, deadline),
                    });
                }
            }
        }

        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = channel::bounded(1);
        let now = Instant::now();
        let deadline = request.deadline;
        let job = Job {
            id,
            work: Work::Annotate {
                netlist: request.netlist,
                task: request.task,
            },
            submitted_at: now,
            deadline: deadline.map(|d| now + d),
            cancelled: Arc::clone(&cancelled),
            reply: reply_tx,
        };
        match self.enqueue(job, blocking) {
            Ok(()) => {}
            // A deadline-carrying request bouncing off a full queue is the
            // same overload condition as the pre-queue shed — surface it
            // with the same structured error and hint. Deadline-less
            // requests keep the plain QueueFull backpressure contract.
            Err(SubmitError::QueueFull) if deadline.is_some() => {
                let deadline = deadline.unwrap_or_default();
                let wait = self
                    .shared
                    .estimated_queue_wait(self.queue_rx.len())
                    .unwrap_or(deadline);
                return Err(SubmitError::Overloaded {
                    retry_after_ms: retry_after_ms(wait, deadline),
                });
            }
            Err(other) => return Err(other),
        }
        Ok(JobHandle {
            id,
            cancelled,
            rx: reply_rx,
        })
    }

    /// Opens an incremental session: annotates `request` cold through the
    /// worker pool and parks the result as the session baseline. Returns
    /// the session id (valid once the handle resolves successfully) and
    /// the handle for the cold annotation.
    pub fn open_session(&self, request: JobRequest) -> Result<(u64, JobHandle), SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let session = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let handle = self.submit_work(Work::OpenSession {
            session,
            netlist: request.netlist,
            task: request.task,
        })?;
        Ok((session, handle))
    }

    /// Incrementally re-annotates an edited netlist against an open
    /// session's baseline, advancing the baseline on success.
    pub fn update_session(
        &self,
        session: u64,
        netlist: impl Into<String>,
    ) -> Result<JobHandle, SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        self.submit_work(Work::UpdateSession {
            session,
            netlist: netlist.into(),
        })
    }

    /// Drops a session's baseline state. Returns whether it existed.
    pub fn close_session(&self, session: u64) -> bool {
        self.shared.sessions.lock().remove(&session).is_some()
    }

    /// Open sessions right now.
    pub fn session_count(&self) -> usize {
        self.shared.sessions.lock().len()
    }

    /// Heap bytes pinned by open sessions' unified circuit stores (graph,
    /// CCC, coarsening, and hierarchy sections), summed from per-slot
    /// gauges — never blocks on a session mid-update.
    pub fn session_store_bytes(&self) -> u64 {
        self.shared
            .sessions
            .lock()
            .values()
            .map(|slot| slot.store_bytes.load(Ordering::Relaxed))
            .sum()
    }

    fn submit_work(&self, work: Work) -> Result<JobHandle, SubmitError> {
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            id,
            work,
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::clone(&cancelled),
            reply: reply_tx,
        };
        self.enqueue(job, false)?;
        Ok(JobHandle {
            id,
            cancelled,
            rx: reply_rx,
        })
    }

    /// Test/bench hook: run an arbitrary closure through the worker pool
    /// with the same queueing, deadline, and reply machinery as real jobs.
    #[doc(hidden)]
    pub fn submit_custom(
        &self,
        work: Box<dyn FnOnce() -> JobResult + Send>,
    ) -> Result<JobHandle, SubmitError> {
        if self.shared.shutting_down.load(Ordering::SeqCst) {
            return Err(SubmitError::ShuttingDown);
        }
        let id = self.shared.next_id.fetch_add(1, Ordering::Relaxed);
        let cancelled = Arc::new(AtomicBool::new(false));
        let (reply_tx, reply_rx) = channel::bounded(1);
        let job = Job {
            id,
            work: Work::Custom(work),
            submitted_at: Instant::now(),
            deadline: None,
            cancelled: Arc::clone(&cancelled),
            reply: reply_tx,
        };
        self.enqueue(job, false)?;
        Ok(JobHandle {
            id,
            cancelled,
            rx: reply_rx,
        })
    }

    fn enqueue(&self, job: Job, blocking: bool) -> Result<(), SubmitError> {
        let guard = self.submit_tx.lock();
        let Some(tx) = guard.as_ref() else {
            return Err(SubmitError::ShuttingDown);
        };
        let result = if blocking {
            tx.send(job).map_err(|_| SubmitError::ShuttingDown)
        } else {
            tx.try_send(job).map_err(|err| match err {
                channel::TrySendError::Full(_) => SubmitError::QueueFull,
                channel::TrySendError::Disconnected(_) => SubmitError::ShuttingDown,
            })
        };
        match result {
            Ok(()) => {
                self.shared
                    .metrics
                    .submitted
                    .fetch_add(1, Ordering::Relaxed);
                self.shared.note_arrival();
                Ok(())
            }
            Err(SubmitError::QueueFull) => {
                self.shared.metrics.rejected.fetch_add(1, Ordering::Relaxed);
                Err(SubmitError::QueueFull)
            }
            Err(other) => Err(other),
        }
    }

    /// Current metrics snapshot.
    pub fn stats(&self) -> StatsSnapshot {
        let workspace = WorkspaceStats {
            templates_pruned: self
                .shared
                .workspaces
                .iter()
                .map(|w| w.templates_pruned())
                .sum(),
            high_water_bytes: self
                .shared
                .workspaces
                .iter()
                .map(|w| w.high_water_bytes())
                .max()
                .unwrap_or(0),
        };
        self.shared.metrics.snapshot(
            self.queue_rx.len(),
            self.shared.workers,
            self.session_count(),
            self.session_store_bytes(),
            self.shared.region_cache.stats(),
            self.shared.intra.gauge(),
            workspace,
            self.snapshot_gauge(),
            self.shared
                .basis_cache
                .as_ref()
                .map(|c| c.stats())
                .unwrap_or_default(),
            gana_gnn::kernel::active().name(),
        )
    }

    /// Assembles a point-in-time [`EngineSnapshot`] of the models, library,
    /// and region-cache contents — everything a fresh process needs for a
    /// byte-identical warm start.
    pub fn export_snapshot(&self) -> EngineSnapshot {
        let library = self
            .shared
            .pipelines
            .first()
            .map(|(_, p)| (*p.library_arc()).clone())
            .unwrap_or_default();
        EngineSnapshot {
            models: self
                .shared
                .pipelines
                .iter()
                .map(|(task, p)| ModelEntry {
                    task: *task,
                    class_names: p.class_names().to_vec(),
                    model: p.model().clone(),
                })
                .collect(),
            library,
            cache_entries: self.shared.region_cache.export_entries(),
        }
    }

    /// Writes an engine snapshot to the configured path (atomic
    /// write-rename). Returns the byte count written, or `Ok(None)` when no
    /// snapshot path was configured.
    pub fn save_snapshot(&self) -> Result<Option<u64>, PersistError> {
        let Some(path) = self.shared.persist.path.as_ref() else {
            return Ok(None);
        };
        let _writer = self.shared.persist.save_lock.lock();
        let bytes = self.export_snapshot().save(path)?;
        *self.shared.persist.last_save.lock() = Some(Instant::now());
        self.shared.persist.bytes.store(bytes, Ordering::Relaxed);
        Ok(Some(bytes))
    }

    /// True when this engine was booted from a snapshot via
    /// [`EngineBuilder::warm_from`].
    pub fn warm_start(&self) -> bool {
        self.shared.persist.warm_start.load(Ordering::Relaxed)
    }

    fn snapshot_gauge(&self) -> SnapshotGauge {
        let last = *self.shared.persist.last_save.lock();
        SnapshotGauge {
            last_save_us: last
                .map(|t| t.elapsed().as_micros().min(u128::from(u64::MAX)) as u64)
                .unwrap_or(0),
            bytes: self.shared.persist.bytes.load(Ordering::Relaxed),
            warm_start: self.shared.persist.warm_start.load(Ordering::Relaxed),
        }
    }

    /// The intra-request thread budget each worker's pipeline runs with.
    pub fn intra_threads(&self) -> usize {
        self.shared.intra.threads()
    }

    /// Jobs waiting in the queue right now.
    pub fn queue_depth(&self) -> usize {
        self.queue_rx.len()
    }

    /// True once shutdown has been requested.
    pub fn is_shutting_down(&self) -> bool {
        self.shared.shutting_down.load(Ordering::SeqCst)
    }

    /// Graceful shutdown: stop admitting, let workers drain every queued
    /// job, and join the pool. Idempotent.
    pub fn shutdown(&self) {
        self.shared.shutting_down.store(true, Ordering::SeqCst);
        // Dropping the senders disconnects the channel once drained; the
        // workers' requeue clone must go too or they would never exit.
        self.shared.requeue_tx.lock().take();
        self.submit_tx.lock().take();
        let handles: Vec<_> = self.handles.lock().drain(..).collect();
        for handle in handles {
            let _ = handle.join();
        }
        // Drain-time snapshot: persist the final cache state exactly once so
        // the next boot warm-starts from where this process left off.
        if self.shared.persist.path.is_some()
            && !self.shared.persist.drain_saved.swap(true, Ordering::SeqCst)
        {
            if let Err(e) = self.save_snapshot() {
                eprintln!("[gana-serve] drain snapshot failed: {e}");
            }
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Shared, worker_id: usize, rx: &channel::Receiver<Job>) {
    let workspace = &shared.workspaces[worker_id];
    while let Ok(job) = rx.recv() {
        match job.work {
            Work::Annotate { task, .. } if shared.max_batch > 1 => {
                let (batch, stashed) = collect_batch(shared, rx, task, job);
                process_annotate_batch(shared, workspace, task, batch);
                // A non-batchable job drained while gathering runs next, in
                // its original queue position relative to this worker.
                if let Some(stashed) = stashed {
                    process(shared, workspace, stashed);
                }
            }
            _ => process(shared, workspace, job),
        }
    }
}

/// One annotate job admitted into a micro-batch. Deadline and cancellation
/// were checked when the job was drained from the queue (its pickup), so
/// only completion bookkeeping remains.
struct BatchJob {
    netlist: String,
    submitted_at: Instant,
    reply: channel::Sender<JobResult>,
}

/// A batch member that survived parse + prepare and awaits the fused
/// forward pass.
struct BatchItem {
    job: BatchJob,
    clean: Circuit,
    graph: CircuitGraph,
    sample: GraphSample,
}

/// Admits one drained job into the gathering batch, mirroring the pickup
/// semantics of [`process`]: queue wait is recorded now, and cancelled or
/// already-expired jobs are answered immediately instead of joining. A
/// job admitted here is committed — it runs even if the fused pass later
/// crosses its deadline, exactly like a serial job picked up in time.
fn admit_into_batch(
    shared: &Shared,
    job: Job,
    batch: &mut Vec<BatchJob>,
    earliest_deadline: &mut Option<Instant>,
) {
    let picked_up = Instant::now();
    let Job {
        work,
        submitted_at,
        deadline,
        cancelled,
        reply,
        ..
    } = job;
    shared.metrics.queue_wait.record(picked_up - submitted_at);
    if cancelled.load(Ordering::Relaxed) {
        shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(Err(JobError::Cancelled));
        return;
    }
    if let Some(deadline) = deadline {
        if picked_up > deadline {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Err(JobError::DeadlineExceeded));
            return;
        }
    }
    let Work::Annotate { netlist, .. } = work else {
        // The callers only admit annotate jobs; answer defensively rather
        // than panicking a worker.
        let _ = reply.send(Err(JobError::Internal(
            "non-annotate job routed into a batch".to_string(),
        )));
        return;
    };
    *earliest_deadline = match (*earliest_deadline, deadline) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    };
    batch.push(BatchJob {
        netlist,
        submitted_at,
        reply,
    });
}

/// Gathers queued annotate jobs for `task` into a micro-batch, starting
/// from `first`. Draining never blocks; once the queue runs dry, the
/// worker waits at most `batch_window_us` for stragglers — capped by the
/// earliest deadline among the gathered jobs, so batching can never hold a
/// job past its deadline. The first drained job that is *not* a same-task
/// annotate is returned unprocessed (`stashed`) and ends the gather.
fn collect_batch(
    shared: &Shared,
    rx: &channel::Receiver<Job>,
    task: Task,
    first: Job,
) -> (Vec<BatchJob>, Option<Job>) {
    let mut batch = Vec::new();
    let mut earliest_deadline = None;
    admit_into_batch(shared, first, &mut batch, &mut earliest_deadline);
    let window_us = shared.effective_batch_window_us(rx.len());
    let window_ends = Instant::now() + Duration::from_micros(window_us);
    let mut stashed = None;
    while batch.len() < shared.max_batch {
        let job = match rx.try_recv() {
            Ok(job) => job,
            Err(channel::TryRecvError::Disconnected) => break,
            Err(channel::TryRecvError::Empty) => {
                if window_us == 0 || batch.is_empty() {
                    break;
                }
                let now = Instant::now();
                let flush_at =
                    earliest_deadline.map_or(window_ends, |d: Instant| d.min(window_ends));
                if flush_at <= now {
                    if flush_at < window_ends {
                        shared
                            .metrics
                            .batch_flush_deadline
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    break;
                }
                match rx.recv_timeout(flush_at - now) {
                    Ok(job) => job,
                    Err(channel::RecvTimeoutError::Timeout) => {
                        if flush_at < window_ends {
                            shared
                                .metrics
                                .batch_flush_deadline
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        break;
                    }
                    Err(channel::RecvTimeoutError::Disconnected) => break,
                }
            }
        };
        match &job.work {
            Work::Annotate { task: t, .. } if *t == task => {
                admit_into_batch(shared, job, &mut batch, &mut earliest_deadline);
            }
            _ => {
                stashed = Some(job);
                break;
            }
        }
    }
    (batch, stashed)
}

/// Runs one gathered micro-batch: per-job parse + prepare, a single fused
/// GCN forward pass across every prepared sample (byte-identical to
/// running them serially — enforced by `gana-core`'s batched-equivalence
/// suite), then per-job postprocessing, caching, and replies. If the
/// fused pass itself errors or panics, every member falls back to the
/// serial predict path so one poisoned sample cannot fail its batchmates.
/// The recognize histogram receives **one** sample covering the whole
/// fused stage, not one per member.
fn process_annotate_batch(
    shared: &Shared,
    workspace: &Arc<Workspace>,
    task: Task,
    batch: Vec<BatchJob>,
) {
    if batch.is_empty() {
        return;
    }
    let members = batch.len() as u64;
    let service_start = Instant::now();
    let Some(pipeline) = shared.pipeline(task) else {
        for job in batch {
            finish_job(
                shared,
                job.submitted_at,
                &job.reply,
                Err(JobError::UnsupportedTask(format!("{task:?}"))),
            );
        }
        return;
    };
    let pipeline = pipeline.clone().with_workspace(Arc::clone(workspace));

    let mut parsed = Vec::with_capacity(batch.len());
    for job in batch {
        match parse_flat(shared, &job.netlist) {
            Ok(flat) => parsed.push((job, flat)),
            Err(err) => finish_job(shared, job.submitted_at, &job.reply, Err(err)),
        }
    }

    let recognize_start = Instant::now();
    let mut items: Vec<BatchItem> = Vec::with_capacity(parsed.len());
    for (job, flat) in parsed {
        let p = &pipeline;
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.prepare(&flat))) {
            Ok(Ok((clean, graph, sample))) => items.push(BatchItem {
                job,
                clean,
                graph,
                sample,
            }),
            Ok(Err(err)) => finish_job(
                shared,
                job.submitted_at,
                &job.reply,
                Err(JobError::Model(err.to_string())),
            ),
            Err(panic) => finish_job(
                shared,
                job.submitted_at,
                &job.reply,
                Err(JobError::Internal(panic_message(&panic))),
            ),
        }
    }
    if items.is_empty() {
        return;
    }

    shared.metrics.batch_sizes.record(items.len());
    if items.len() >= 2 {
        shared
            .metrics
            .batched_requests
            .fetch_add(items.len() as u64, Ordering::Relaxed);
    }

    let fused = {
        let refs: Vec<&GraphSample> = items.iter().map(|item| &item.sample).collect();
        let p = &pipeline;
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| p.predict_samples(&refs)))
    };
    let predictions: Vec<Result<Vec<usize>, JobError>> = match fused {
        Ok(Ok(preds)) => preds.into_iter().map(Ok).collect(),
        _ => items
            .iter()
            .map(|item| {
                let p = &pipeline;
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    p.predict_sample(&item.sample)
                })) {
                    Ok(Ok(pred)) => Ok(pred),
                    Ok(Err(err)) => Err(JobError::Model(err.to_string())),
                    Err(panic) => Err(JobError::Internal(panic_message(&panic))),
                }
            })
            .collect(),
    };

    for (item, prediction) in items.into_iter().zip(predictions) {
        let BatchItem {
            job,
            clean,
            graph,
            sample: _,
        } = item;
        let result = match prediction {
            Ok(gcn_class) => {
                let p = &pipeline;
                match std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
                    p.finish(clean, graph, gcn_class)
                })) {
                    Ok(design) => {
                        let annotation = Arc::new(Annotation::from_design(&design));
                        if let Some(cache) = &shared.cache {
                            cache.insert(cache_key(task, &job.netlist), Arc::clone(&annotation));
                        }
                        Ok(annotation)
                    }
                    Err(panic) => Err(JobError::Internal(panic_message(&panic))),
                }
            }
            Err(err) => Err(err),
        };
        finish_job(shared, job.submitted_at, &job.reply, result);
    }
    shared.metrics.recognize.record(recognize_start.elapsed());
    // The fused pass amortizes: per-job service cost is the batch elapsed
    // divided by its members.
    shared.note_service(service_start.elapsed(), members);
}

fn process(shared: &Shared, workspace: &Arc<Workspace>, job: Job) {
    // Fairness marker: resume a yielded session drain. It carries no reply
    // and records no per-job metrics — the queued updates it resumes own
    // those.
    if let Work::DrainSession { session } = job.work {
        resume_session_drain(shared, workspace, session);
        return;
    }
    let picked_up = Instant::now();
    let Job {
        work,
        submitted_at,
        deadline,
        cancelled,
        reply,
        ..
    } = job;
    shared.metrics.queue_wait.record(picked_up - submitted_at);

    if cancelled.load(Ordering::Relaxed) {
        shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(Err(JobError::Cancelled));
        return;
    }
    if let Some(deadline) = deadline {
        if picked_up > deadline {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Err(JobError::DeadlineExceeded));
            return;
        }
    }

    let service_start = Instant::now();
    let result = match work {
        Work::Annotate { netlist, task } => annotate(shared, workspace, &netlist, task),
        Work::OpenSession {
            session,
            netlist,
            task,
        } => open_session(shared, workspace, session, &netlist, task),
        Work::UpdateSession { session, netlist } => {
            // Same-session updates go through the per-session pending
            // queue; replies and completion metrics are handled per drained
            // update inside.
            enqueue_session_update(
                shared,
                workspace,
                session,
                PendingUpdate {
                    netlist,
                    submitted_at,
                    deadline,
                    cancelled,
                    reply,
                },
            );
            return;
        }
        Work::DrainSession { .. } => return, // handled before destructuring
        Work::Custom(work) => run_caught(work),
    };
    shared.note_service(service_start.elapsed(), 1);
    finish_job(shared, submitted_at, &reply, result);
}

/// Records completion metrics and delivers the result to the submitter
/// (who may have dropped the handle; that's fine).
fn finish_job(
    shared: &Shared,
    submitted_at: Instant,
    reply: &channel::Sender<JobResult>,
    result: JobResult,
) {
    match &result {
        Ok(_) => shared.metrics.completed.fetch_add(1, Ordering::Relaxed),
        Err(_) => shared.metrics.failed.fetch_add(1, Ordering::Relaxed),
    };
    shared.metrics.total.record(submitted_at.elapsed());
    let _ = reply.send(result);
}

/// Runs fallible work, converting panics into a structured [`JobError`] so
/// one poisoned input cannot take a worker thread down.
fn run_caught(work: Box<dyn FnOnce() -> JobResult + Send>) -> JobResult {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(work)) {
        Ok(result) => result,
        Err(panic) => Err(JobError::Internal(panic_message(&panic))),
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = panic.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = panic.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked".to_string()
    }
}

/// Parses and flattens SPICE text, recording the parse-stage latency.
fn parse_flat(shared: &Shared, netlist: &str) -> Result<Circuit, JobError> {
    let parse_start = Instant::now();
    let parsed = parse_library(netlist).and_then(|lib| flatten(&lib));
    shared.metrics.parse.record(parse_start.elapsed());
    parsed.map_err(|err| JobError::Parse(err.to_string()))
}

fn open_session(
    shared: &Shared,
    workspace: &Arc<Workspace>,
    session: u64,
    netlist: &str,
    task: Task,
) -> JobResult {
    let Some(incremental) = shared.incremental(task) else {
        return Err(JobError::UnsupportedTask(format!("{task:?}")));
    };
    // Cheap pre-check so a full store rejects before the cold annotate;
    // re-checked authoritatively at insert time below.
    if shared.sessions.lock().len() >= shared.max_sessions {
        return Err(JobError::SessionLimit(shared.max_sessions));
    }
    let flat = parse_flat(shared, netlist)?;

    let recognize_start = Instant::now();
    let incremental = incremental.clone().with_workspace(Arc::clone(workspace));
    let annotated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        incremental.annotate_full(&flat)
    }));
    shared.metrics.recognize.record(recognize_start.elapsed());

    let baseline = match annotated {
        Ok(Ok(baseline)) => baseline,
        Ok(Err(err)) => return Err(JobError::Model(err.to_string())),
        Err(panic) => return Err(JobError::Internal(panic_message(&panic))),
    };
    let annotation = Arc::new(Annotation::from_design(&baseline.design));
    {
        let mut sessions = shared.sessions.lock();
        if sessions.len() >= shared.max_sessions {
            return Err(JobError::SessionLimit(shared.max_sessions));
        }
        let store_bytes = baseline.store_bytes() as u64;
        sessions.insert(
            session,
            Arc::new(SessionSlot {
                state: Mutex::new(SessionState { task, baseline }),
                pending: Mutex::new(VecDeque::new()),
                draining: AtomicBool::new(false),
                store_bytes: AtomicU64::new(store_bytes),
            }),
        );
    }
    Ok(annotation)
}

/// Parks an update on its session's pending queue, then drains the queue
/// if no other worker currently is.
fn enqueue_session_update(
    shared: &Shared,
    workspace: &Arc<Workspace>,
    session: u64,
    update: PendingUpdate,
) {
    // Hold the store lock only to fetch the slot; distinct sessions drain
    // in parallel on different workers.
    let Some(slot) = shared.sessions.lock().get(&session).cloned() else {
        finish_job(
            shared,
            update.submitted_at,
            &update.reply,
            Err(JobError::UnknownSession(session)),
        );
        return;
    };
    slot.pending.lock().push_back(update);
    drain_session(shared, workspace, session, &slot);
}

/// Resumes a drain for a [`Work::DrainSession`] marker. A session closed
/// or drained in the meantime makes this a no-op.
fn resume_session_drain(shared: &Shared, workspace: &Arc<Workspace>, session: u64) {
    let Some(slot) = shared.sessions.lock().get(&session).cloned() else {
        return;
    };
    drain_session(shared, workspace, session, &slot);
}

/// Drains a session's pending updates if no other worker currently is.
///
/// Fairness: after [`SESSION_DRAIN_QUANTUM`] updates with more still
/// pending, the worker releases drain duty and re-enqueues a
/// [`Work::DrainSession`] marker at the *back* of the shared queue, so
/// jobs from other sessions that queued behind a one-session burst get a
/// worker before the burst finishes. Duty is released **before** the
/// marker is sent — the claiming worker's CAS must succeed — and if the
/// requeue fails (queue full, shutdown) this worker reclaims duty and
/// keeps draining inline rather than stranding the updates.
///
/// The outer CAS loop re-checks `pending` after every release so an
/// update that raced in during the handoff is never stranded: either this
/// worker reclaims duty or the racing pusher won it.
fn drain_session(shared: &Shared, workspace: &Arc<Workspace>, session: u64, slot: &SessionSlot) {
    while slot
        .draining
        .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
        .is_ok()
    {
        let mut drained = 0usize;
        loop {
            if drained >= SESSION_DRAIN_QUANTUM && !slot.pending.lock().is_empty() {
                slot.draining.store(false, Ordering::Release);
                if requeue_drain(shared, session) {
                    shared
                        .metrics
                        .session_yields
                        .fetch_add(1, Ordering::Relaxed);
                    return;
                }
                if slot
                    .draining
                    .compare_exchange(false, true, Ordering::AcqRel, Ordering::Acquire)
                    .is_err()
                {
                    return; // a racing pusher took over the drain
                }
                drained = 0;
            }
            let next = slot.pending.lock().pop_front();
            let Some(update) = next else { break };
            run_session_update(shared, workspace, slot, update);
            drained += 1;
        }
        slot.draining.store(false, Ordering::Release);
        if slot.pending.lock().is_empty() {
            break;
        }
    }
}

/// Re-enqueues a [`Work::DrainSession`] fairness marker at the back of the
/// shared queue. Returns false when the queue is full or the engine is
/// shutting down — the caller then keeps draining inline.
fn requeue_drain(shared: &Shared, session: u64) -> bool {
    let guard = shared.requeue_tx.lock();
    let Some(tx) = guard.as_ref() else {
        return false;
    };
    // The marker's reply channel is a dummy: nothing ever sends on it.
    let (reply, _rx) = channel::bounded(1);
    let job = Job {
        id: 0,
        work: Work::DrainSession { session },
        submitted_at: Instant::now(),
        deadline: None,
        cancelled: Arc::new(AtomicBool::new(false)),
        reply,
    };
    tx.try_send(job).is_ok()
}

/// Executes one drained update: parse outside the state lock, advance the
/// baseline inside it, and deliver the reply.
fn run_session_update(
    shared: &Shared,
    workspace: &Arc<Workspace>,
    slot: &SessionSlot,
    update: PendingUpdate,
) {
    let PendingUpdate {
        netlist,
        submitted_at,
        deadline,
        cancelled,
        reply,
    } = update;
    // Queued updates waited twice (shared queue, then session queue):
    // re-check the caller's deadline and cancellation before running.
    if cancelled.load(Ordering::Relaxed) {
        shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
        let _ = reply.send(Err(JobError::Cancelled));
        return;
    }
    if let Some(deadline) = deadline {
        if Instant::now() > deadline {
            shared.metrics.expired.fetch_add(1, Ordering::Relaxed);
            let _ = reply.send(Err(JobError::DeadlineExceeded));
            return;
        }
    }

    let service_start = Instant::now();
    let result = (|| {
        let flat = parse_flat(shared, &netlist)?;
        let mut state = slot.state.lock();
        let Some(incremental) = shared.incremental(state.task) else {
            return Err(JobError::UnsupportedTask(format!("{:?}", state.task)));
        };
        let incremental = incremental.clone().with_workspace(Arc::clone(workspace));
        let recognize_start = Instant::now();
        let updated = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            incremental.update(&state.baseline, &flat)
        }));
        shared.metrics.recognize.record(recognize_start.elapsed());

        let next = match updated {
            Ok(Ok((next, _stats))) => next,
            Ok(Err(err)) => return Err(JobError::Model(err.to_string())),
            Err(panic) => return Err(JobError::Internal(panic_message(&panic))),
        };
        let annotation = Arc::new(Annotation::from_design(&next.design));
        slot.store_bytes
            .store(next.store_bytes() as u64, Ordering::Relaxed);
        state.baseline = next;
        Ok(annotation)
    })();
    shared.note_service(service_start.elapsed(), 1);
    finish_job(shared, submitted_at, &reply, result);
}

fn annotate(shared: &Shared, workspace: &Arc<Workspace>, netlist: &str, task: Task) -> JobResult {
    let Some(pipeline) = shared.pipeline(task) else {
        return Err(JobError::UnsupportedTask(format!("{task:?}")));
    };

    let parse_start = Instant::now();
    let parsed = parse_library(netlist).and_then(|lib| flatten(&lib));
    shared.metrics.parse.record(parse_start.elapsed());
    let flat = match parsed {
        Ok(flat) => flat,
        Err(err) => return Err(JobError::Parse(err.to_string())),
    };

    let recognize_start = Instant::now();
    let pipeline = pipeline.clone().with_workspace(Arc::clone(workspace));
    let recognized = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || {
        pipeline.recognize(&flat)
    }));
    shared.metrics.recognize.record(recognize_start.elapsed());

    let design = match recognized {
        Ok(Ok(design)) => design,
        Ok(Err(err)) => return Err(JobError::Model(err.to_string())),
        Err(panic) => return Err(JobError::Internal(panic_message(&panic))),
    };
    let annotation = Arc::new(Annotation::from_design(&design));
    if let Some(cache) = &shared.cache {
        // Only successes are cached; errors must never poison the cache.
        cache.insert(cache_key(task, netlist), Arc::clone(&annotation));
    }
    Ok(annotation)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gana_gnn::{GcnConfig, GcnModel};
    use gana_primitives::PrimitiveLibrary;

    fn tiny_pipeline(task: Task) -> Pipeline {
        let config = GcnConfig {
            conv_channels: vec![4, 4],
            filter_order: 2,
            fc_dim: 8,
            num_classes: 2,
            dropout: 0.0,
            batch_norm: false,
            ..GcnConfig::default()
        };
        Pipeline::new(
            GcnModel::new(config).expect("valid"),
            vec!["ota".to_string(), "bias".to_string()],
            PrimitiveLibrary::standard().expect("parses"),
            task,
        )
    }

    const OTA: &str = "M0 o1 i1 t gnd! NMOS\nM1 o2 i2 t gnd! NMOS\nM2 t vb gnd! gnd! NMOS\nM3 vb vb gnd! gnd! NMOS\nR1 vdd! vb 10k\n";

    #[test]
    fn submit_and_wait_round_trip() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(2)
            .build();
        let handle = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted");
        let annotation = handle.wait().expect("annotates");
        assert_eq!(annotation.device_labels.len(), 5);
        assert!(annotation.device_labels.iter().any(|(d, _)| d == "M0"));
        let stats = engine.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn cache_answers_repeat_submissions() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .build();
        let first = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted")
            .wait();
        let second = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted")
            .wait();
        assert_eq!(first.expect("ok"), second.expect("ok"));
        assert_eq!(engine.stats().cache_hits, 1);
    }

    #[test]
    fn unsupported_task_is_structured_error() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .build();
        let err = engine
            .submit(JobRequest::new(OTA, Task::Rf))
            .expect("accepted")
            .wait()
            .expect_err("no RF pipeline");
        assert_eq!(err.code(), "task");
    }

    #[test]
    fn shutdown_drains_queued_jobs() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(2)
            .build();
        let handles: Vec<_> = (0..6)
            .map(|_| {
                engine
                    .submit(JobRequest::new(OTA, Task::OtaBias))
                    .expect("accepted")
            })
            .collect();
        engine.shutdown();
        for handle in handles {
            handle.wait().expect("drained before exit");
        }
        assert!(matches!(
            engine.submit(JobRequest::new(OTA, Task::OtaBias)),
            Err(SubmitError::ShuttingDown)
        ));
    }

    #[test]
    fn session_limit_rejects_with_structured_error() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .max_sessions(1)
            .build();
        let (first, handle) = engine
            .open_session(JobRequest::new(OTA, Task::OtaBias))
            .expect("admits");
        handle.wait().expect("opens");
        let (_, handle) = engine
            .open_session(JobRequest::new(OTA, Task::OtaBias))
            .expect("admits");
        let err = handle.wait().expect_err("store is full");
        assert_eq!(err.code(), "session_limit");
        // Closing frees a slot for the next open.
        assert!(engine.close_session(first));
        let (_, handle) = engine
            .open_session(JobRequest::new(OTA, Task::OtaBias))
            .expect("admits");
        handle.wait().expect("opens after a close");
    }

    #[test]
    fn concurrent_same_session_updates_all_complete_in_order() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(2)
            .build();
        let (session, handle) = engine
            .open_session(JobRequest::new(OTA, Task::OtaBias))
            .expect("admits");
        handle.wait().expect("opens");
        // Burst of updates for one session: the per-session pending queue
        // must drain them all (on at most one worker at a time) and answer
        // every handle.
        let handles: Vec<_> = (0..6)
            .map(|_| engine.update_session(session, OTA).expect("admits"))
            .collect();
        for handle in handles {
            handle.wait().expect("update completes");
        }
        assert_eq!(engine.session_count(), 1);
        // The open session pins its baseline's unified store; the gauge
        // reports it and a close releases it.
        let stats = engine.stats();
        assert!(stats.store_bytes > 0, "{stats:?}");
        assert!(engine.close_session(session));
        assert_eq!(engine.stats().store_bytes, 0);
        engine.shutdown();
    }

    #[test]
    fn joint_budget_caps_workers_times_intra() {
        // For every (workers, cores, requested) combination, the effective
        // intra budget must keep workers × intra within the joint budget's
        // oversubscription ceiling — even when the caller asks for more.
        for cores in 1..=16 {
            for workers in 1..=16 {
                for requested in [0, 1, 3, 64] {
                    let intra = effective_intra_threads(workers, requested, cores);
                    assert!(intra >= 1);
                    assert!(
                        workers * intra < cores + workers,
                        "workers={workers} cores={cores} requested={requested} intra={intra}"
                    );
                    if requested > 0 {
                        assert!(intra <= requested, "explicit requests are a ceiling");
                    }
                }
            }
        }
    }

    #[test]
    fn stats_expose_intra_pool_gauge() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(2)
            .intra_threads(3)
            .build();
        let budget = engine.intra_threads();
        assert!((1..=3).contains(&budget));
        let handle = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted");
        handle.wait().expect("annotates");
        let stats = engine.stats();
        assert_eq!(stats.intra_pool_size, budget);
        // Idle engine: the shared gauge must have settled back to zero.
        assert_eq!(stats.intra_busy, 0);
        assert_eq!(stats.intra_queued, 0);
        let wire = stats.to_wire();
        assert!(wire.contains("intra_pool_size="));
    }

    #[test]
    fn stats_expose_workspace_counters() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .build();
        engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted")
            .wait()
            .expect("annotates");
        let stats = engine.stats();
        // The NMOS-only OTA cannot host PMOS/LC/RC templates, so the
        // prefilter must have skipped some; inference must have grown the
        // worker's dense buffers.
        assert!(stats.templates_pruned > 0, "{stats:?}");
        assert!(stats.workspace_high_water_bytes > 0, "{stats:?}");
        let wire = stats.to_wire();
        assert!(wire.contains("templates_pruned="));
        assert!(wire.contains("workspace_high_water_bytes="));
    }

    #[test]
    fn quantized_engine_with_basis_cache_matches_plain_and_reports_stats() {
        let plain = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .basis_cache_bytes(0)
            .build();
        let reference = plain
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted")
            .wait()
            .expect("annotates");
        let idle = plain.stats();
        assert_eq!(idle.basis_cache_hits + idle.basis_cache_misses, 0);
        assert_eq!(idle.basis_cache_entries, 0, "budget 0 disables the cache");

        // Result caching off so the repeat submission reaches a worker and
        // exercises the basis cache instead of the annotation cache.
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .quantized(true)
            .basis_cache_bytes(8 << 20)
            .build();
        for run in 0..2 {
            let annotation = engine
                .submit(JobRequest::new(OTA, Task::OtaBias))
                .expect("accepted")
                .wait()
                .expect("annotates");
            assert_eq!(
                annotation.device_labels, reference.device_labels,
                "quantized + cached labels match f64 (run {run})"
            );
        }
        let stats = engine.stats();
        assert!(stats.basis_cache_misses > 0, "cold run computed: {stats:?}");
        assert!(stats.basis_cache_hits > 0, "warm run reused: {stats:?}");
        assert!(stats.basis_cache_entries > 0, "{stats:?}");
        assert!(stats.basis_cache_bytes > 0, "{stats:?}");
        assert!(
            ["avx2", "neon", "scalar"].contains(&stats.kernel.as_str()),
            "{stats:?}"
        );
        assert!(stats.to_wire().contains("basis_cache_hits="));
    }

    /// Distinct netlists (one per `k`) so a burst is real work, not cache
    /// hits: the shared OTA core plus a load resistor whose value varies.
    fn ota_variant(k: usize) -> String {
        format!("{OTA}R2 vdd! o1 {}k\n", 10 + k)
    }

    #[test]
    fn batched_burst_matches_unbatched_annotations() {
        let plain = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .build();
        let batched = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .max_batch(4)
            .batch_window_us(500_000)
            .build();
        let netlists: Vec<String> = (0..4).map(ota_variant).collect();
        let expected: Vec<_> = netlists
            .iter()
            .map(|n| {
                plain
                    .submit(JobRequest::new(n.clone(), Task::OtaBias))
                    .expect("accepted")
                    .wait()
                    .expect("annotates")
            })
            .collect();
        let handles: Vec<_> = netlists
            .iter()
            .map(|n| {
                batched
                    .submit(JobRequest::new(n.clone(), Task::OtaBias))
                    .expect("accepted")
            })
            .collect();
        for (handle, expected) in handles.into_iter().zip(&expected) {
            assert_eq!(&handle.wait().expect("annotates"), expected);
        }
        let stats = batched.stats();
        assert_eq!(stats.completed, 4);
        // The single worker held the first job for up to the 500 ms window,
        // so the burst must have fused at least once.
        assert!(stats.batched_requests >= 2, "{stats:?}");
        assert!(stats.batch_size_p95 >= 2, "{stats:?}");
    }

    #[test]
    fn partial_batch_flushes_at_member_deadline() {
        // A window far beyond the test budget: only the deadline cap can
        // flush the lone job in time.
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .max_batch(8)
            .batch_window_us(60_000_000)
            .build();
        let start = Instant::now();
        let handle = engine
            .submit(JobRequest::new(OTA, Task::OtaBias).with_deadline(Duration::from_millis(300)))
            .expect("accepted");
        handle
            .wait()
            .expect("flushed at the deadline, not the window");
        assert!(
            start.elapsed() < Duration::from_secs(30),
            "deadline cap must beat the window"
        );
        let stats = engine.stats();
        assert_eq!(stats.completed, 1);
        assert!(stats.batch_flush_deadline >= 1, "{stats:?}");
    }

    #[test]
    fn batching_is_off_by_default() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .build();
        let handles: Vec<_> = (0..3)
            .map(|k| {
                engine
                    .submit(JobRequest::new(ota_variant(k), Task::OtaBias))
                    .expect("accepted")
            })
            .collect();
        for handle in handles {
            handle.wait().expect("annotates");
        }
        let stats = engine.stats();
        assert_eq!(stats.batched_requests, 0);
        assert_eq!(stats.batch_size_p50, 0);
        assert_eq!(stats.batch_flush_deadline, 0);
    }

    #[test]
    fn deadline_aware_shed_returns_overloaded() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .result_cache_capacity(0)
            .build();
        // Warm the service EMA with a measurably slow job.
        engine
            .submit_custom(Box::new(|| {
                std::thread::sleep(Duration::from_millis(40));
                Err(JobError::Internal("timing probe".to_string()))
            }))
            .expect("accepted")
            .wait()
            .expect_err("probe result");
        // Occupy the lone worker behind a gate, then pile up queue depth.
        let (gate_tx, gate_rx) = channel::bounded::<()>(1);
        let busy = engine
            .submit_custom(Box::new(move || {
                let _ = gate_rx.recv();
                Err(JobError::Internal("gated".to_string()))
            }))
            .expect("accepted");
        let queued: Vec<_> = (0..3)
            .map(|_| {
                engine
                    .submit_custom(Box::new(|| Err(JobError::Internal("filler".to_string()))))
                    .expect("accepted")
            })
            .collect();
        // ~40 ms EMA × 3 queued on 1 worker ≫ a 1 ms deadline: shed.
        let err = engine
            .submit(JobRequest::new(OTA, Task::OtaBias).with_deadline(Duration::from_millis(1)))
            .expect_err("sheds before queueing");
        assert!(
            matches!(err, SubmitError::Overloaded { retry_after_ms } if retry_after_ms >= 1),
            "{err:?}"
        );
        // A deadline-less submission still queues: shedding never touches
        // the plain backpressure path.
        let no_deadline = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("deadline-less submissions bypass the shed");
        assert_eq!(engine.stats().shed, 1);
        let _ = gate_tx.send(());
        let _ = busy.wait();
        for handle in queued {
            let _ = handle.wait();
        }
        no_deadline.wait().expect("annotates once the queue drains");
        engine.shutdown();
    }

    #[test]
    fn session_drain_yields_after_quantum() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .build();
        let (session, handle) = engine
            .open_session(JobRequest::new(OTA, Task::OtaBias))
            .expect("admits");
        handle.wait().expect("opens");
        let slot = engine
            .shared
            .sessions
            .lock()
            .get(&session)
            .cloned()
            .expect("open slot");
        // Stage a burst longer than two quanta directly on the pending
        // queue, then drain from this thread: the drain must yield via a
        // DrainSession marker (resumed by the engine's worker) and still
        // deliver every reply.
        let n = SESSION_DRAIN_QUANTUM * 2 + 1;
        let mut replies = Vec::new();
        for _ in 0..n {
            let (tx, rx) = channel::bounded(1);
            slot.pending.lock().push_back(PendingUpdate {
                netlist: OTA.to_string(),
                submitted_at: Instant::now(),
                deadline: None,
                cancelled: Arc::new(AtomicBool::new(false)),
                reply: tx,
            });
            replies.push(rx);
        }
        drain_session(&engine.shared, &engine.shared.workspaces[0], session, &slot);
        for rx in replies {
            rx.recv_timeout(Duration::from_secs(60))
                .expect("reply delivered")
                .expect("update succeeds");
        }
        assert!(engine.stats().session_yields >= 1);
        engine.shutdown();
    }

    #[test]
    fn auto_batch_window_tracks_traffic() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .max_batch(8)
            .batch_window_auto()
            .build();
        let shared = &engine.shared;
        // No traffic history yet: flush immediately.
        assert_eq!(shared.effective_batch_window_us(0), 0);
        shared.arrival_gap_ns.store(100_000, Ordering::Relaxed); // 100 µs gaps
        shared.service_ema_ns.store(4_000_000, Ordering::Relaxed); // 4 ms svc
                                                                   // 3 queued + the batch head = 4 of 8: wait ≈ 4 missing × 100 µs.
        assert_eq!(shared.effective_batch_window_us(3), 400);
        // Slow arrivals: capped at half the mean service time.
        shared.arrival_gap_ns.store(3_000_000, Ordering::Relaxed);
        assert_eq!(shared.effective_batch_window_us(3), 2_000);
        // Pathological service EMA: the hard 5 ms ceiling holds.
        shared
            .service_ema_ns
            .store(1_000_000_000, Ordering::Relaxed);
        assert_eq!(shared.effective_batch_window_us(0), 5_000);
        // A full batch already queued flushes immediately.
        assert_eq!(shared.effective_batch_window_us(7), 0);
        // Fixed mode ignores the EMAs entirely.
        let fixed = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .max_batch(8)
            .batch_window_us(250)
            .build();
        assert_eq!(fixed.shared.effective_batch_window_us(0), 250);
    }

    #[test]
    fn worker_survives_panicking_job() {
        let engine = Engine::builder()
            .pipeline(tiny_pipeline(Task::OtaBias))
            .workers(1)
            .build();
        let boom = engine
            .submit_custom(Box::new(|| panic!("injected failure")))
            .expect("accepted");
        let err = boom.wait().expect_err("panic surfaces as error");
        assert_eq!(err.code(), "internal");
        // The single worker must still be alive to serve this:
        let ok = engine
            .submit(JobRequest::new(OTA, Task::OtaBias))
            .expect("accepted");
        ok.wait().expect("worker survived");
    }
}
