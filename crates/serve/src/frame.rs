//! Length-prefixed binary framing for the serve protocol.
//!
//! The text protocol ([`crate::protocol`]) escapes newlines out of SPICE
//! payloads and re-parses them on every hop. This module carries the exact
//! same [`Request`]/[`Response`] surface as checksummed binary frames, so
//! high-volume clients skip the escape/unescape pass and corrupted frames
//! are detected instead of misparsed:
//!
//! ```text
//! [0xBF][version u8][body_len u32 LE][body][crc32(body) u32 LE]
//! ```
//!
//! The body is `[opcode u8][fields...]` with integers little-endian and
//! strings length-prefixed (`u32` byte count + UTF-8 bytes) — the same
//! primitives `gana-persist` uses for snapshots, via its bounds-checked
//! [`Reader`]/[`Writer`].
//!
//! The first frame byte `0xBF` can never start a text-protocol line (verbs
//! are lowercase ASCII), which is what lets the server auto-detect the mode
//! from the first byte of a connection and keep legacy text clients working
//! unchanged.
//!
//! Framing violations (bad magic, unsupported version, oversized length,
//! CRC mismatch) are unrecoverable — the byte stream has lost sync — so
//! the server answers with one structured error frame and closes. A
//! well-framed body that fails to decode (unknown opcode, bad task tag)
//! only fails that one request.

use crate::job::Annotation;
use crate::protocol::{Request, Response};
use gana_core::Task;
use gana_persist::{crc32, PersistError, Reader, Writer};
use std::io::{self, Read, Write as IoWrite};

/// First byte of every binary frame. Text-protocol lines start with
/// lowercase ASCII, so this byte unambiguously selects the binary mode.
pub const FRAME_MAGIC: u8 = 0xBF;
/// Frame format version this build writes and accepts.
pub const FRAME_VERSION: u8 = 1;
/// Upper bound on a frame body; anything larger is a framing error, not an
/// allocation request.
pub const MAX_BODY_BYTES: usize = 64 << 20;
/// Frame header: magic + version + body length.
pub const HEADER_BYTES: usize = 6;

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Socket-level failure (includes a peer closing mid-frame).
    Io(io::Error),
    /// Framing is broken: bad magic, unsupported version, oversized or
    /// CRC-mismatched body. The stream has lost sync; close the connection.
    Desync(String),
    /// The frame was intact but its body does not decode (unknown opcode,
    /// bad tag, truncated field). Recoverable: only this request fails.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(err) => write!(f, "frame i/o: {err}"),
            FrameError::Desync(msg) => write!(f, "frame desync: {msg}"),
            FrameError::Malformed(msg) => write!(f, "bad frame body: {msg}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(err: io::Error) -> FrameError {
        FrameError::Io(err)
    }
}

fn body_error(err: PersistError) -> FrameError {
    FrameError::Malformed(err.to_string())
}

// Request opcodes.
const OP_ANNOTATE: u8 = 1;
const OP_BATCH: u8 = 2;
const OP_OPEN: u8 = 3;
const OP_UPDATE: u8 = 4;
const OP_CLOSE: u8 = 5;
const OP_STATS: u8 = 6;
const OP_PING: u8 = 7;
const OP_SHUTDOWN: u8 = 8;
const OP_FLEET_STATS: u8 = 9;

// Response opcodes.
const RESP_OK: u8 = 1;
const RESP_SESSION: u8 = 2;
const RESP_CLOSED: u8 = 3;
const RESP_ERR: u8 = 4;
const RESP_STATS: u8 = 5;
const RESP_PONG: u8 = 6;
const RESP_BYE: u8 = 7;
const RESP_FLEET: u8 = 8;

fn task_tag(task: Task) -> u8 {
    match task {
        Task::OtaBias => 0,
        Task::Rf => 1,
    }
}

fn task_from_tag(tag: u8) -> Result<Task, FrameError> {
    match tag {
        0 => Ok(Task::OtaBias),
        1 => Ok(Task::Rf),
        other => Err(FrameError::Malformed(format!("unknown task tag {other}"))),
    }
}

/// Wraps a body in the frame header + trailing CRC.
pub fn frame_bytes(body: &[u8]) -> Vec<u8> {
    debug_assert!(body.len() <= MAX_BODY_BYTES);
    let mut out = Vec::with_capacity(HEADER_BYTES + body.len() + 4);
    out.push(FRAME_MAGIC);
    out.push(FRAME_VERSION);
    out.extend_from_slice(&(body.len() as u32).to_le_bytes());
    out.extend_from_slice(body);
    out.extend_from_slice(&crc32(body).to_le_bytes());
    out
}

/// Encodes a request as one complete frame.
pub fn encode_request(request: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    match request {
        Request::Annotate {
            task,
            deadline_ms,
            netlist,
        } => {
            w.put_u8(OP_ANNOTATE);
            w.put_u8(task_tag(*task));
            w.put_u8(u8::from(deadline_ms.is_some()));
            w.put_u64(deadline_ms.unwrap_or(0));
            w.put_str(netlist);
        }
        Request::Batch(count) => {
            w.put_u8(OP_BATCH);
            w.put_u64(*count as u64);
        }
        Request::Open { task, netlist } => {
            w.put_u8(OP_OPEN);
            w.put_u8(task_tag(*task));
            w.put_str(netlist);
        }
        Request::Update { session, netlist } => {
            w.put_u8(OP_UPDATE);
            w.put_u64(*session);
            w.put_str(netlist);
        }
        Request::Close(session) => {
            w.put_u8(OP_CLOSE);
            w.put_u64(*session);
        }
        Request::Stats => w.put_u8(OP_STATS),
        Request::FleetStats => w.put_u8(OP_FLEET_STATS),
        Request::Ping => w.put_u8(OP_PING),
        Request::Shutdown => w.put_u8(OP_SHUTDOWN),
    }
    frame_bytes(&w.into_bytes())
}

/// Decodes a request from a verified frame body.
pub fn decode_request(body: &[u8]) -> Result<Request, FrameError> {
    let mut r = Reader::new(body);
    let opcode = r.get_u8().map_err(body_error)?;
    let request = match opcode {
        OP_ANNOTATE => {
            let task = task_from_tag(r.get_u8().map_err(body_error)?)?;
            let has_deadline = r.get_u8().map_err(body_error)?;
            let deadline = r.get_u64().map_err(body_error)?;
            Request::Annotate {
                task,
                deadline_ms: (has_deadline != 0).then_some(deadline),
                netlist: r.get_str().map_err(body_error)?,
            }
        }
        OP_BATCH => {
            let count = r.get_u64().map_err(body_error)?;
            let count = usize::try_from(count)
                .map_err(|_| FrameError::Malformed(format!("batch count {count} overflows")))?;
            Request::Batch(count)
        }
        OP_OPEN => Request::Open {
            task: task_from_tag(r.get_u8().map_err(body_error)?)?,
            netlist: r.get_str().map_err(body_error)?,
        },
        OP_UPDATE => Request::Update {
            session: r.get_u64().map_err(body_error)?,
            netlist: r.get_str().map_err(body_error)?,
        },
        OP_CLOSE => Request::Close(r.get_u64().map_err(body_error)?),
        OP_STATS => Request::Stats,
        OP_FLEET_STATS => Request::FleetStats,
        OP_PING => Request::Ping,
        OP_SHUTDOWN => Request::Shutdown,
        other => {
            return Err(FrameError::Malformed(format!(
                "unknown request opcode {other}"
            )))
        }
    };
    r.expect_end().map_err(body_error)?;
    Ok(request)
}

fn put_annotation(w: &mut Writer, annotation: &Annotation) {
    w.put_str(&annotation.circuit_name);
    w.put_u32(annotation.device_labels.len() as u32);
    for (device, label) in &annotation.device_labels {
        w.put_str(device);
        w.put_str(label);
    }
    w.put_str_list(&annotation.sub_blocks);
    w.put_u64(annotation.constraint_count as u64);
    w.put_str(&annotation.hierarchical_spice);
}

fn get_annotation(r: &mut Reader<'_>) -> Result<Annotation, FrameError> {
    let circuit_name = r.get_str().map_err(body_error)?;
    let labels = r.get_count(8).map_err(body_error)?;
    let mut device_labels = Vec::with_capacity(labels);
    for _ in 0..labels {
        let device = r.get_str().map_err(body_error)?;
        let label = r.get_str().map_err(body_error)?;
        device_labels.push((device, label));
    }
    Ok(Annotation {
        circuit_name,
        device_labels,
        sub_blocks: r.get_str_list().map_err(body_error)?,
        constraint_count: r.get_usize().map_err(body_error)?,
        hierarchical_spice: r.get_str().map_err(body_error)?,
    })
}

/// Encodes a response as one complete frame.
pub fn encode_response(response: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    match response {
        Response::Ok(annotation) => {
            w.put_u8(RESP_OK);
            put_annotation(&mut w, annotation);
        }
        Response::Session {
            session,
            annotation,
        } => {
            w.put_u8(RESP_SESSION);
            w.put_u64(*session);
            put_annotation(&mut w, annotation);
        }
        Response::Closed(session) => {
            w.put_u8(RESP_CLOSED);
            w.put_u64(*session);
        }
        Response::Err { code, message } => {
            w.put_u8(RESP_ERR);
            w.put_str(code);
            w.put_str(message);
        }
        Response::Stats(wire) => {
            w.put_u8(RESP_STATS);
            w.put_str(wire);
        }
        Response::Fleet { shards, fleet } => {
            w.put_u8(RESP_FLEET);
            w.put_u32(shards.len() as u32);
            for (id, wire) in shards {
                w.put_u64(*id);
                w.put_str(wire);
            }
            w.put_str(fleet);
        }
        Response::Pong => w.put_u8(RESP_PONG),
        Response::Bye => w.put_u8(RESP_BYE),
    }
    frame_bytes(&w.into_bytes())
}

/// Decodes a response from a verified frame body.
pub fn decode_response(body: &[u8]) -> Result<Response, FrameError> {
    let mut r = Reader::new(body);
    let opcode = r.get_u8().map_err(body_error)?;
    let response = match opcode {
        RESP_OK => Response::Ok(get_annotation(&mut r)?),
        RESP_SESSION => Response::Session {
            session: r.get_u64().map_err(body_error)?,
            annotation: get_annotation(&mut r)?,
        },
        RESP_CLOSED => Response::Closed(r.get_u64().map_err(body_error)?),
        RESP_ERR => Response::Err {
            code: r.get_str().map_err(body_error)?,
            message: r.get_str().map_err(body_error)?,
        },
        RESP_STATS => Response::Stats(r.get_str().map_err(body_error)?),
        RESP_FLEET => {
            let count = r.get_count(12).map_err(body_error)?;
            let mut shards = Vec::with_capacity(count);
            for _ in 0..count {
                let id = r.get_u64().map_err(body_error)?;
                let wire = r.get_str().map_err(body_error)?;
                shards.push((id, wire));
            }
            Response::Fleet {
                shards,
                fleet: r.get_str().map_err(body_error)?,
            }
        }
        RESP_PONG => Response::Pong,
        RESP_BYE => Response::Bye,
        other => {
            return Err(FrameError::Malformed(format!(
                "unknown response opcode {other}"
            )))
        }
    };
    r.expect_end().map_err(body_error)?;
    Ok(response)
}

/// Validates a frame header (magic, version, body length) and returns the
/// body length. The 6 header bytes are `buf[..HEADER_BYTES]`.
pub fn check_header(header: &[u8; HEADER_BYTES]) -> Result<usize, FrameError> {
    if header[0] != FRAME_MAGIC {
        return Err(FrameError::Desync(format!(
            "bad frame magic 0x{:02x} (want 0x{FRAME_MAGIC:02x})",
            header[0]
        )));
    }
    if header[1] != FRAME_VERSION {
        return Err(FrameError::Desync(format!(
            "unsupported frame version {} (this build speaks {FRAME_VERSION})",
            header[1]
        )));
    }
    let len = u32::from_le_bytes([header[2], header[3], header[4], header[5]]) as usize;
    if len > MAX_BODY_BYTES {
        return Err(FrameError::Desync(format!(
            "frame body of {len} bytes exceeds the {MAX_BODY_BYTES}-byte cap"
        )));
    }
    Ok(len)
}

/// Verifies the trailing CRC against the body.
pub fn check_crc(body: &[u8], crc_bytes: &[u8; 4]) -> Result<(), FrameError> {
    let want = u32::from_le_bytes(*crc_bytes);
    let got = crc32(body);
    if got != want {
        return Err(FrameError::Desync(format!(
            "frame crc mismatch (got 0x{got:08x}, frame says 0x{want:08x})"
        )));
    }
    Ok(())
}

/// Reads one complete frame from a blocking stream and returns its verified
/// body. Returns `Ok(None)` on a clean EOF at a frame boundary.
pub fn read_frame(reader: &mut impl Read) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; HEADER_BYTES];
    match reader.read_exact(&mut header) {
        Ok(()) => {}
        Err(err) if err.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(err) => return Err(FrameError::Io(err)),
    }
    let len = check_header(&header)?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    let mut crc_bytes = [0u8; 4];
    reader.read_exact(&mut crc_bytes)?;
    check_crc(&body, &crc_bytes)?;
    Ok(Some(body))
}

/// Writes one pre-encoded frame.
pub fn write_frame(writer: &mut impl IoWrite, frame: &[u8]) -> io::Result<()> {
    writer.write_all(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_annotation() -> Annotation {
        Annotation {
            circuit_name: "ota5".to_string(),
            device_labels: vec![
                ("M0".to_string(), "gm".to_string()),
                ("R1".to_string(), "bias".to_string()),
            ],
            sub_blocks: vec!["DiffPair".to_string(), "CM".to_string()],
            constraint_count: 3,
            hierarchical_spice: ".SUBCKT ota5 in out\nM0 a b c d NMOS\n.ENDS\n".to_string(),
        }
    }

    fn round_trip_request(request: Request) {
        let frame = encode_request(&request);
        let body = read_frame(&mut frame.as_slice())
            .expect("frame reads")
            .expect("not eof");
        assert_eq!(decode_request(&body).expect("decodes"), request);
    }

    #[test]
    fn request_frames_round_trip() {
        round_trip_request(Request::Annotate {
            task: Task::OtaBias,
            deadline_ms: Some(250),
            netlist: "M1 a b c d NMOS\n.end\n".to_string(),
        });
        round_trip_request(Request::Annotate {
            task: Task::Rf,
            deadline_ms: None,
            netlist: "R1 a b 1k".into(),
        });
        // A zero deadline is distinct from no deadline.
        round_trip_request(Request::Annotate {
            task: Task::Rf,
            deadline_ms: Some(0),
            netlist: String::new(),
        });
        round_trip_request(Request::Batch(7));
        round_trip_request(Request::Open {
            task: Task::OtaBias,
            netlist: "M1 a b c d NMOS\n.end\n".to_string(),
        });
        round_trip_request(Request::Update {
            session: 42,
            netlist: "M1 a b c d NMOS W=9u\n.end\n".to_string(),
        });
        round_trip_request(Request::Close(42));
        round_trip_request(Request::Stats);
        round_trip_request(Request::FleetStats);
        round_trip_request(Request::Ping);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn response_frames_round_trip() {
        let responses = [
            Response::Ok(sample_annotation()),
            Response::Session {
                session: 9,
                annotation: sample_annotation(),
            },
            Response::Closed(9),
            Response::Err {
                code: "parse".into(),
                message: "line 3: bad card\nnear M9".into(),
            },
            Response::Stats("submitted=4 completed=4".into()),
            Response::Fleet {
                shards: vec![
                    (0, "submitted=4 completed=4".into()),
                    (1, "submitted=2 completed=2".into()),
                ],
                fleet: "submitted=6 completed=6".into(),
            },
            Response::Fleet {
                shards: Vec::new(),
                fleet: String::new(),
            },
            Response::Pong,
            Response::Bye,
        ];
        for response in responses {
            let frame = encode_response(&response);
            let body = read_frame(&mut frame.as_slice())
                .expect("frame reads")
                .expect("not eof");
            assert_eq!(decode_response(&body).expect("decodes"), response);
        }
    }

    #[test]
    fn corrupt_frames_are_structured_errors() {
        let mut frame = encode_request(&Request::Ping);
        // Bad magic.
        let mut bad = frame.clone();
        bad[0] = b'p';
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::Desync(_))
        ));
        // Future version.
        let mut bad = frame.clone();
        bad[1] = FRAME_VERSION + 1;
        assert!(matches!(
            read_frame(&mut bad.as_slice()),
            Err(FrameError::Desync(_))
        ));
        // Body bit flip fails the CRC.
        let flip = HEADER_BYTES;
        frame[flip] ^= 0x40;
        assert!(matches!(
            read_frame(&mut frame.as_slice()),
            Err(FrameError::Desync(_))
        ));
        // Absurd length is rejected before allocation.
        let mut huge = encode_request(&Request::Ping);
        huge[2..HEADER_BYTES].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut huge.as_slice()),
            Err(FrameError::Desync(_))
        ));
    }

    #[test]
    fn truncated_frames_are_io_errors_not_panics() {
        let frame = encode_request(&Request::Annotate {
            task: Task::OtaBias,
            deadline_ms: None,
            netlist: "M1 a b c d NMOS".into(),
        });
        // EOF exactly at a frame boundary is a clean close...
        assert!(matches!(read_frame(&mut [].as_slice()), Ok(None)));
        // ...but EOF anywhere inside a frame is an error.
        for cut in 1..frame.len() {
            let result = read_frame(&mut &frame[..cut]);
            assert!(
                !matches!(result, Ok(Some(_))),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    #[test]
    fn malformed_bodies_are_recoverable_errors() {
        // Unknown opcode in a well-formed frame.
        let body = vec![0xEEu8];
        assert!(matches!(
            decode_request(&body),
            Err(FrameError::Malformed(_))
        ));
        assert!(matches!(
            decode_response(&body),
            Err(FrameError::Malformed(_))
        ));
        // Bad task tag.
        let mut w = Writer::new();
        w.put_u8(OP_OPEN);
        w.put_u8(9);
        w.put_str("M1 a b c d NMOS");
        assert!(matches!(
            decode_request(&w.into_bytes()),
            Err(FrameError::Malformed(_))
        ));
        // Trailing garbage after a valid request.
        let mut w = Writer::new();
        w.put_u8(OP_PING);
        w.put_u8(0);
        assert!(matches!(
            decode_request(&w.into_bytes()),
            Err(FrameError::Malformed(_))
        ));
    }
}
