//! Job requests, results, and handles.

use crate::channel;
use gana_core::{export, RecognizedDesign, Task};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A single annotation request.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Raw SPICE text (may contain `.SUBCKT` hierarchy; it is flattened).
    pub netlist: String,
    /// Which rule set / model to run.
    pub task: Task,
    /// Drop the job unprocessed if it waits in the queue longer than this.
    pub deadline: Option<Duration>,
}

impl JobRequest {
    /// Request with no deadline.
    pub fn new(netlist: impl Into<String>, task: Task) -> JobRequest {
        JobRequest {
            netlist: netlist.into(),
            task,
            deadline: None,
        }
    }

    /// Sets a queue deadline.
    pub fn with_deadline(mut self, deadline: Duration) -> JobRequest {
        self.deadline = Some(deadline);
        self
    }
}

/// The annotation produced for one netlist — the service-level distillation
/// of a [`RecognizedDesign`]: stable, ordered, and cheap to ship or cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// Circuit name after preprocessing.
    pub circuit_name: String,
    /// `(device, final label)` pairs, sorted by device name.
    pub device_labels: Vec<(String, String)>,
    /// Recognized sub-block labels in hierarchy order.
    pub sub_blocks: Vec<String>,
    /// Number of layout constraints attached.
    pub constraint_count: usize,
    /// The annotated hierarchical SPICE export.
    pub hierarchical_spice: String,
}

impl Annotation {
    /// Distills a recognized design into the wire/cacheable form.
    pub fn from_design(design: &RecognizedDesign) -> Annotation {
        let mut device_labels: Vec<(String, String)> = (0..design.graph.vertex_count())
            .filter_map(|v| {
                design
                    .graph
                    .device_name(v)
                    .map(|name| (name.to_string(), design.final_label[v].clone()))
            })
            .collect();
        device_labels.sort();
        Annotation {
            circuit_name: design.circuit.name().to_string(),
            device_labels,
            sub_blocks: design.sub_blocks.iter().map(|b| b.label.clone()).collect(),
            constraint_count: design.constraints.len(),
            hierarchical_spice: export::to_hierarchical_spice(design),
        }
    }
}

/// Why a job failed. Structured so a malformed netlist maps to a per-job
/// error response instead of tearing down a worker or the connection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobError {
    /// The SPICE text failed to parse or flatten.
    Parse(String),
    /// Preprocessing or model inference failed.
    Model(String),
    /// The engine has no pipeline configured for the requested task.
    UnsupportedTask(String),
    /// An `update` named a session that was never opened or already closed.
    UnknownSession(u64),
    /// An `open` would exceed the engine's configured session limit.
    SessionLimit(usize),
    /// The job sat in the queue past its deadline.
    DeadlineExceeded,
    /// The submitter cancelled before a worker picked the job up.
    Cancelled,
    /// The engine shut down before the job completed.
    Shutdown,
    /// The recognition code panicked; the worker survived.
    Internal(String),
}

impl JobError {
    /// Stable short code used on the wire.
    pub fn code(&self) -> &'static str {
        match self {
            JobError::Parse(_) => "parse",
            JobError::Model(_) => "model",
            JobError::UnsupportedTask(_) => "task",
            JobError::UnknownSession(_) => "session",
            JobError::SessionLimit(_) => "session_limit",
            JobError::DeadlineExceeded => "deadline",
            JobError::Cancelled => "cancelled",
            JobError::Shutdown => "shutdown",
            JobError::Internal(_) => "internal",
        }
    }
}

impl fmt::Display for JobError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JobError::Parse(m) => write!(f, "netlist rejected: {m}"),
            JobError::Model(m) => write!(f, "recognition failed: {m}"),
            JobError::UnsupportedTask(t) => write!(f, "no pipeline for task {t:?}"),
            JobError::UnknownSession(id) => write!(f, "unknown session {id}"),
            JobError::SessionLimit(max) => {
                write!(f, "session limit reached ({max} open); close one first")
            }
            JobError::DeadlineExceeded => write!(f, "queue deadline exceeded"),
            JobError::Cancelled => write!(f, "cancelled by submitter"),
            JobError::Shutdown => write!(f, "engine shut down"),
            JobError::Internal(m) => write!(f, "internal error: {m}"),
        }
    }
}

impl std::error::Error for JobError {}

/// Outcome delivered to the submitter.
pub type JobResult = Result<Arc<Annotation>, JobError>;

/// Why a submission was not accepted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// Bounded queue at capacity — the explicit backpressure signal.
    QueueFull,
    /// Deadline-aware shed: the estimated queue wait already exceeds the
    /// request's deadline, so queueing it would only burn a worker on a
    /// job that times out anyway. The hint tells the client when retrying
    /// is expected to succeed.
    Overloaded {
        /// Suggested client backoff before retrying, in milliseconds.
        retry_after_ms: u64,
    },
    /// The engine is shutting down and accepts no new work.
    ShuttingDown,
}

impl fmt::Display for SubmitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubmitError::QueueFull => write!(f, "submission queue is full"),
            SubmitError::Overloaded { retry_after_ms } => write!(
                f,
                "overloaded: queue wait exceeds deadline, retry_after_ms={retry_after_ms}"
            ),
            SubmitError::ShuttingDown => write!(f, "engine is shutting down"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// Handle to one in-flight job.
#[derive(Debug)]
pub struct JobHandle {
    pub(crate) id: u64,
    pub(crate) cancelled: Arc<AtomicBool>,
    pub(crate) rx: channel::Receiver<JobResult>,
}

impl JobHandle {
    /// The engine-assigned job id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Requests cancellation. Only jobs still waiting in the queue are
    /// dropped; a job already on a worker runs to completion (the pipeline
    /// has no safe interruption points).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    /// Blocks until the job finishes.
    pub fn wait(self) -> JobResult {
        self.rx.recv().unwrap_or(Err(JobError::Shutdown))
    }

    /// Blocks up to `timeout`; `None` when it elapses first.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<JobResult> {
        match self.rx.recv_timeout(timeout) {
            Ok(result) => Some(result),
            Err(crate::channel::RecvTimeoutError::Timeout) => None,
            Err(crate::channel::RecvTimeoutError::Disconnected) => Some(Err(JobError::Shutdown)),
        }
    }
}

/// What a worker executes.
pub(crate) enum Work {
    /// The normal path: annotate a netlist.
    Annotate {
        /// Raw SPICE text.
        netlist: String,
        /// Rule set / model selector.
        task: Task,
    },
    /// Open a stateful session: cold annotate, then park the baseline.
    OpenSession {
        /// Engine-assigned session id (allocated at submit time so the
        /// caller learns it before the job runs).
        session: u64,
        /// Raw SPICE text.
        netlist: String,
        /// Rule set / model selector.
        task: Task,
    },
    /// Incrementally re-annotate against a session baseline and advance it.
    UpdateSession {
        /// Session id from `OpenSession`.
        session: u64,
        /// Raw SPICE text of the edited netlist.
        netlist: String,
    },
    /// Fairness marker re-enqueued by a worker that yielded a session's
    /// pending-update drain after its quantum; the claiming worker resumes
    /// the drain. Carries no reply — the queued updates own the replies.
    DrainSession {
        /// Session whose pending queue still holds updates.
        session: u64,
    },
    /// Arbitrary closure, used by tests and benches to model slow or
    /// misbehaving jobs deterministically.
    #[allow(clippy::type_complexity)]
    Custom(Box<dyn FnOnce() -> JobResult + Send>),
}

impl fmt::Debug for Work {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Work::Annotate { task, netlist } => f
                .debug_struct("Annotate")
                .field("task", task)
                .field("netlist_bytes", &netlist.len())
                .finish(),
            Work::OpenSession {
                session,
                task,
                netlist,
            } => f
                .debug_struct("OpenSession")
                .field("session", session)
                .field("task", task)
                .field("netlist_bytes", &netlist.len())
                .finish(),
            Work::UpdateSession { session, netlist } => f
                .debug_struct("UpdateSession")
                .field("session", session)
                .field("netlist_bytes", &netlist.len())
                .finish(),
            Work::DrainSession { session } => f
                .debug_struct("DrainSession")
                .field("session", session)
                .finish(),
            Work::Custom(_) => f.write_str("Custom(..)"),
        }
    }
}

/// Internal queued job.
#[derive(Debug)]
pub(crate) struct Job {
    /// Matches the [`JobHandle::id`] handed to the submitter; kept on the
    /// queued job for debug logging.
    #[allow(dead_code)]
    pub(crate) id: u64,
    pub(crate) work: Work,
    pub(crate) submitted_at: Instant,
    pub(crate) deadline: Option<Instant>,
    pub(crate) cancelled: Arc<AtomicBool>,
    pub(crate) reply: channel::Sender<JobResult>,
}
