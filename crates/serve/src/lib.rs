//! `gana-serve`: a concurrent annotation service over the `gana-core`
//! pipeline.
//!
//! The one-shot CLI loads the model and primitive library, annotates a
//! single netlist, and exits. This crate keeps those artifacts resident and
//! shares them across a worker pool, so many netlists can be annotated
//! concurrently with bounded memory and explicit backpressure:
//!
//! * [`Engine`] — in-process service: shared `Arc`'d artifacts, a bounded
//!   MPMC submission queue, N worker threads, a result cache, and
//!   per-stage metrics.
//! * [`server`] — a TCP front end (`gana serve`) with graceful shutdown
//!   that drains in-flight jobs; each connection auto-detects text or
//!   binary framing from its first byte.
//! * [`client`] — a small blocking client used by `gana submit` and tests.
//! * [`protocol`] — the newline-delimited text format shared by both sides.
//! * [`frame`] — the length-prefixed, CRC-checked binary framing carrying
//!   the same request/response surface.
//!
//! The submission queue is the backpressure boundary: [`Engine::submit`]
//! returns [`SubmitError::QueueFull`] immediately when the queue is at
//! capacity, while [`Engine::submit_blocking`] waits for space. Jobs carry
//! optional deadlines and can be cancelled while queued.

pub mod client;
pub mod engine;
pub mod frame;
pub mod job;
pub mod metrics;
pub mod protocol;
pub mod server;
pub mod transport;

pub(crate) use crossbeam::channel;

pub use client::{Client, ClientError, RetryPolicy};
pub use engine::{Engine, EngineBuilder, EngineConfig, DEFAULT_BASIS_CACHE_BYTES};
pub use job::{Annotation, JobError, JobHandle, JobRequest, JobResult, SubmitError};
pub use metrics::{
    HistogramSnapshot, LatencyHistogram, Metrics, SizeHistogram, StatsSnapshot, WorkspaceStats,
};
pub use server::{serve, ServerConfig, ServerHandle};
pub use transport::{accept_transport, ReadRequest, Transport};
