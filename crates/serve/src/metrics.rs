//! Lock-free service metrics: counters plus per-stage latency histograms.
//!
//! Latencies land in an HDR-style log-linear histogram: microsecond values
//! bucket by their power-of-two octave, and each octave splits into
//! `2^SUB_BITS` linear sub-buckets. A histogram is therefore a fixed array
//! of atomics — recording is wait-free, a quantile read is a single sweep,
//! and the reported quantile is the bucket's upper bound, so it can
//! overshoot the true value by at most `1/2^SUB_BITS` (~3.1%) relative
//! error. Snapshots are sparse, mergeable across shards and connections,
//! and survive the stats wire format, which is what lets `fleetstats`
//! aggregate real fleet percentiles instead of taking the worst shard.

use gana_gnn::BasisCacheStats;
use gana_incremental::RegionCacheStats;
use gana_par::GaugeSnapshot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Sub-bucket resolution: each power-of-two octave splits into
/// `2^SUB_BITS` linear sub-buckets, bounding the relative quantile error
/// at `1/2^SUB_BITS` (3.125%). Values below `2^SUB_BITS` µs are exact.
const SUB_BITS: u32 = 5;
const SUB_COUNT: u64 = 1 << SUB_BITS;
/// Buckets covering the full `u64` microsecond range: one exact region of
/// `SUB_COUNT` single-value buckets, then `SUB_COUNT` per octave.
const HIST_BUCKETS: usize = (SUB_COUNT as usize) * (64 - SUB_BITS as usize + 1);

/// Bucket index for a microsecond value. Total order preserving: a larger
/// value never lands in a smaller bucket.
fn bucket_index(us: u64) -> usize {
    if us < SUB_COUNT {
        return us as usize;
    }
    let octave = 63 - u64::from(us.leading_zeros());
    let sub = (us >> (octave - u64::from(SUB_BITS))) - SUB_COUNT;
    ((octave - u64::from(SUB_BITS) + 1) * SUB_COUNT + sub) as usize
}

/// Inclusive upper bound of a bucket — the value quantiles report. For the
/// exact region this is the value itself; above it, at most `1/SUB_COUNT`
/// over the true sample.
fn bucket_value(index: usize) -> u64 {
    let index = index as u64;
    let group = index / SUB_COUNT;
    let sub = index % SUB_COUNT;
    if group == 0 {
        sub
    } else {
        // Subtract before adding: the top bucket's bound is exactly
        // `u64::MAX`, so `+ (1 << scale) - 1` in that order would overflow.
        let scale = group - 1;
        ((SUB_COUNT + sub) << scale) - 1 + (1u64 << scale)
    }
}

/// Wait-free HDR-style latency histogram (log octaves × linear
/// sub-buckets, bounded relative error; see the module docs).
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: Box<[AtomicU64]>,
    total_us: AtomicU64,
    samples: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: (0..HIST_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            total_us: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        self.counts[bucket_index(us)].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.samples())
            .unwrap_or(0)
    }

    /// Approximate quantile (`q` in `[0,1]`) in microseconds: the upper
    /// bound of the bucket containing the q-th sample (within ~3.1% above
    /// the true value).
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.samples();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (bucket, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return bucket_value(bucket);
            }
        }
        bucket_value(HIST_BUCKETS - 1)
    }

    /// Sparse point-in-time copy, mergeable and wire-encodable.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = Vec::new();
        let mut samples = 0;
        for (bucket, count) in self.counts.iter().enumerate() {
            let count = count.load(Ordering::Relaxed);
            if count > 0 {
                buckets.push((bucket as u32, count));
                samples += count;
            }
        }
        HistogramSnapshot {
            buckets,
            samples,
            total_us: self.total_us.load(Ordering::Relaxed),
        }
    }
}

/// Immutable sparse histogram: the nonzero buckets of a
/// [`LatencyHistogram`] at one instant. Merging two snapshots yields
/// exactly the histogram of the concatenated samples, so fleet and
/// cross-connection percentiles are real percentiles, not maxima.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// `(bucket index, count)` pairs, ascending by index, counts nonzero.
    buckets: Vec<(u32, u64)>,
    samples: u64,
    total_us: u64,
}

impl HistogramSnapshot {
    /// Number of samples across all buckets.
    pub fn samples(&self) -> u64 {
        self.samples
    }

    /// Mean in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.samples).unwrap_or(0)
    }

    /// Same quantile rule as [`LatencyHistogram::quantile_us`].
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.samples == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.samples as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for &(bucket, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return bucket_value(bucket as usize);
            }
        }
        bucket_value(HIST_BUCKETS - 1)
    }

    /// Folds `other` into `self`: bucket-wise sum, exactly the histogram of
    /// the concatenated sample streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        let mut merged = Vec::with_capacity(self.buckets.len() + other.buckets.len());
        let (mut a, mut b) = (
            self.buckets.iter().peekable(),
            other.buckets.iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(&&(ai, ac)), Some(&&(bi, bc))) => {
                    if ai < bi {
                        merged.push((ai, ac));
                        a.next();
                    } else if bi < ai {
                        merged.push((bi, bc));
                        b.next();
                    } else {
                        merged.push((ai, ac + bc));
                        a.next();
                        b.next();
                    }
                }
                (Some(&&pair), None) => {
                    merged.push(pair);
                    a.next();
                }
                (None, Some(&&pair)) => {
                    merged.push(pair);
                    b.next();
                }
                (None, None) => break,
            }
        }
        self.buckets = merged;
        self.samples += other.samples;
        self.total_us += other.total_us;
    }

    /// Compact single-token wire form: `-` when empty, otherwise
    /// `total_us;idx:count;idx:count` (no whitespace, so it fits the
    /// `key=value` stats line unescaped).
    pub fn encode(&self) -> String {
        if self.samples == 0 {
            return "-".to_string();
        }
        let mut out = self.total_us.to_string();
        for &(bucket, count) in &self.buckets {
            out.push(';');
            out.push_str(&bucket.to_string());
            out.push(':');
            out.push_str(&count.to_string());
        }
        out
    }

    /// Parses [`HistogramSnapshot::encode`] output. `None` on malformed
    /// input or out-of-range bucket indexes.
    pub fn decode(text: &str) -> Option<HistogramSnapshot> {
        if text == "-" {
            return Some(HistogramSnapshot::default());
        }
        let mut parts = text.split(';');
        let total_us: u64 = parts.next()?.parse().ok()?;
        let mut buckets: Vec<(u32, u64)> = Vec::new();
        let mut samples = 0;
        for pair in parts {
            let (bucket, count) = pair.split_once(':')?;
            let bucket: u32 = bucket.parse().ok()?;
            let count: u64 = count.parse().ok()?;
            if bucket as usize >= HIST_BUCKETS || count == 0 {
                return None;
            }
            buckets.push((bucket, count));
            samples += count;
        }
        if samples == 0 {
            return None;
        }
        buckets.sort_unstable_by_key(|&(bucket, _)| bucket);
        buckets.dedup_by(|&mut (b, c), &mut (prev_b, ref mut prev_c)| {
            if b == prev_b {
                *prev_c += c;
                true
            } else {
                false
            }
        });
        Some(HistogramSnapshot {
            buckets,
            samples,
            total_us,
        })
    }
}

/// Exact micro-batch sizes land in their own slot up to this cap (larger
/// batches clamp into the last slot). Serving batches are single-digit to
/// low-double-digit, so exact small buckets beat the latency histogram's
/// bounded-error buckets here.
const SIZE_BUCKETS: usize = 65;

/// Wait-free histogram over exact small integer sizes (micro-batch sizes).
#[derive(Debug)]
pub struct SizeHistogram {
    counts: [AtomicU64; SIZE_BUCKETS],
    samples: AtomicU64,
}

impl Default for SizeHistogram {
    fn default() -> SizeHistogram {
        SizeHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: AtomicU64::new(0),
        }
    }
}

impl SizeHistogram {
    /// Records one size observation.
    pub fn record(&self, size: usize) {
        self.counts[size.min(SIZE_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Exact quantile (`q` in `[0,1]`): the size of the q-th observation
    /// (0 when empty; sizes above the cap read as the cap).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.samples();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (size, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return size as u64;
            }
        }
        (SIZE_BUCKETS - 1) as u64
    }
}

/// All counters and histograms of one [`Engine`](crate::Engine).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs finished with a structured error.
    pub failed: AtomicU64,
    /// Submissions rejected with `QueueFull`.
    pub rejected: AtomicU64,
    /// Submissions shed before queueing because the estimated queue wait
    /// already exceeded their deadline (`overloaded`).
    pub shed: AtomicU64,
    /// Jobs answered from the result cache without touching a worker.
    pub cache_hits: AtomicU64,
    /// Jobs dropped before processing (deadline passed or cancelled).
    pub expired: AtomicU64,
    /// Time from submission to a worker picking the job up.
    pub queue_wait: LatencyHistogram,
    /// SPICE parse + flatten stage.
    pub parse: LatencyHistogram,
    /// GCN + postprocessing recognition stage.
    pub recognize: LatencyHistogram,
    /// Submission to reply, including queueing.
    pub total: LatencyHistogram,
    /// Jobs whose GCN forward ran inside a fused micro-batch of ≥ 2.
    pub batched_requests: AtomicU64,
    /// Fused forwards run by the batcher, by batch size.
    pub batch_sizes: SizeHistogram,
    /// Batch flushes forced by a member's deadline before the batch window
    /// elapsed or the batch filled.
    pub batch_flush_deadline: AtomicU64,
    /// Session drains that handed duty back to the shared queue after the
    /// fairness quantum, so other sessions' jobs could interleave.
    pub session_yields: AtomicU64,
}

impl Metrics {
    /// Immutable snapshot (counters may lag each other by in-flight jobs).
    /// `sessions` and `region` come from the engine's session store and
    /// shared region cache; `intra` from the shared intra-request pool
    /// gauge; `workspace` aggregates the per-worker annotation workspaces;
    /// `basis` from the shared Chebyshev basis cache and `kernel` from the
    /// sparse kernel dispatcher.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        queue_depth: usize,
        workers: usize,
        sessions: usize,
        store_bytes: u64,
        region: RegionCacheStats,
        intra: GaugeSnapshot,
        workspace: WorkspaceStats,
        persistence: SnapshotGauge,
        basis: BasisCacheStats,
        kernel: &str,
    ) -> StatsSnapshot {
        let queue_wait = self.queue_wait.snapshot();
        let parse = self.parse.snapshot();
        let recognize = self.recognize.snapshot();
        let total = self.total.snapshot();
        StatsSnapshot {
            sessions,
            store_bytes,
            snapshot_last_save_us: persistence.last_save_us,
            snapshot_bytes: persistence.bytes,
            warm_start: persistence.warm_start,
            intra_pool_size: intra.size,
            intra_busy: intra.busy,
            intra_queued: intra.queued,
            templates_pruned: workspace.templates_pruned,
            workspace_high_water_bytes: workspace.high_water_bytes,
            region_hits: region.hits,
            region_misses: region.misses,
            region_evictions: region.evictions,
            region_splices: region.splices,
            region_bytes: region.bytes,
            basis_cache_hits: basis.hits,
            basis_cache_misses: basis.misses,
            basis_cache_evictions: basis.evictions,
            basis_cache_bytes: basis.bytes,
            basis_cache_entries: basis.entries,
            kernel: kernel.to_string(),
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            queue_depth,
            workers,
            queue_wait_p50_us: queue_wait.quantile_us(0.5),
            queue_wait_p95_us: queue_wait.quantile_us(0.95),
            queue_wait_p99_us: queue_wait.quantile_us(0.99),
            parse_p50_us: parse.quantile_us(0.5),
            parse_p95_us: parse.quantile_us(0.95),
            parse_p99_us: parse.quantile_us(0.99),
            recognize_p50_us: recognize.quantile_us(0.5),
            recognize_p95_us: recognize.quantile_us(0.95),
            recognize_p99_us: recognize.quantile_us(0.99),
            total_p50_us: total.quantile_us(0.5),
            total_p95_us: total.quantile_us(0.95),
            total_p99_us: total.quantile_us(0.99),
            total_p999_us: total.quantile_us(0.999),
            total_mean_us: total.mean_us(),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batch_size_p50: self.batch_sizes.quantile(0.5),
            batch_size_p95: self.batch_sizes.quantile(0.95),
            batch_flush_deadline: self.batch_flush_deadline.load(Ordering::Relaxed),
            session_yields: self.session_yields.load(Ordering::Relaxed),
            queue_wait_hist: queue_wait,
            parse_hist: parse,
            recognize_hist: recognize,
            total_hist: total,
        }
    }
}

/// Point-in-time persistence state, computed by the engine at stats time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotGauge {
    /// Microseconds since the last successful snapshot save (`0` when no
    /// snapshot has been written by this process yet).
    pub last_save_us: u64,
    /// Size in bytes of the last written snapshot (`0` when none).
    pub bytes: u64,
    /// True when the engine was restored from a snapshot at boot.
    pub warm_start: bool,
}

/// Aggregate view of the per-worker annotation workspaces, computed by the
/// engine at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Templates skipped by the VF2 prefilter, summed over all workers.
    pub templates_pruned: u64,
    /// Largest steady-state inference-buffer footprint (bytes) any single
    /// worker has reached.
    pub high_water_bytes: u64,
}

/// Point-in-time view of the engine counters, used by the `stats` request
/// and the periodic log line.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with a structured error.
    pub failed: u64,
    /// Submissions rejected with `QueueFull`.
    pub rejected: u64,
    /// Submissions shed pre-queue by deadline-aware overload protection.
    pub shed: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs dropped before processing (deadline/cancel).
    pub expired: u64,
    /// Open incremental sessions.
    pub sessions: usize,
    /// Heap bytes pinned by open sessions' unified circuit stores (graph,
    /// CCC, coarsening, and hierarchy sections).
    pub store_bytes: u64,
    /// Region-cache (sub-block VF2) lookups answered from the cache.
    pub region_hits: u64,
    /// Region-cache lookups that ran the matcher.
    pub region_misses: u64,
    /// Region-cache entries evicted to stay under the byte budget.
    pub region_evictions: u64,
    /// Sub-block results spliced from prior session state.
    pub region_splices: u64,
    /// Bytes currently held by the region cache.
    pub region_bytes: u64,
    /// Chebyshev basis-cache lookups answered without the recurrence.
    pub basis_cache_hits: u64,
    /// Chebyshev basis-cache lookups that computed the basis.
    pub basis_cache_misses: u64,
    /// Basis-cache entries evicted to stay under the byte budget.
    pub basis_cache_evictions: u64,
    /// Bytes currently held by the basis cache.
    pub basis_cache_bytes: u64,
    /// Entries currently held by the basis cache.
    pub basis_cache_entries: u64,
    /// Active spmm/axpy kernel variant (`avx2`, `neon`, or `scalar`).
    pub kernel: String,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Per-worker intra-request thread budget.
    pub intra_pool_size: usize,
    /// Intra-request pool workers currently executing items (all workers).
    pub intra_busy: usize,
    /// Intra-request items claimed by no worker yet (all workers).
    pub intra_queued: usize,
    /// Templates skipped by the VF2 candidate prefilter (all workers).
    pub templates_pruned: u64,
    /// Peak per-worker annotation-workspace footprint in bytes.
    pub workspace_high_water_bytes: u64,
    /// p50 queue wait (µs).
    pub queue_wait_p50_us: u64,
    /// p95 queue wait (µs).
    pub queue_wait_p95_us: u64,
    /// p99 queue wait (µs).
    pub queue_wait_p99_us: u64,
    /// p50 parse stage (µs).
    pub parse_p50_us: u64,
    /// p95 parse stage (µs).
    pub parse_p95_us: u64,
    /// p99 parse stage (µs).
    pub parse_p99_us: u64,
    /// p50 recognize stage (µs).
    pub recognize_p50_us: u64,
    /// p95 recognize stage (µs).
    pub recognize_p95_us: u64,
    /// p99 recognize stage (µs).
    pub recognize_p99_us: u64,
    /// p50 end-to-end (µs).
    pub total_p50_us: u64,
    /// p95 end-to-end (µs).
    pub total_p95_us: u64,
    /// p99 end-to-end (µs).
    pub total_p99_us: u64,
    /// p99.9 end-to-end (µs).
    pub total_p999_us: u64,
    /// Mean end-to-end (µs).
    pub total_mean_us: u64,
    /// Jobs served from inside a fused micro-batch of ≥ 2.
    pub batched_requests: u64,
    /// Median fused-batch size (exact).
    pub batch_size_p50: u64,
    /// p95 fused-batch size (exact).
    pub batch_size_p95: u64,
    /// Batch flushes forced early by a member's deadline.
    pub batch_flush_deadline: u64,
    /// Session drains yielded back to the queue for fairness.
    pub session_yields: u64,
    /// Microseconds since the last successful snapshot save (`0` = never).
    pub snapshot_last_save_us: u64,
    /// Size in bytes of the last written snapshot (`0` = none).
    pub snapshot_bytes: u64,
    /// True when the engine warm-started from a snapshot at boot.
    pub warm_start: bool,
    /// Full queue-wait distribution (sparse, mergeable).
    pub queue_wait_hist: HistogramSnapshot,
    /// Full parse-stage distribution.
    pub parse_hist: HistogramSnapshot,
    /// Full recognize-stage distribution.
    pub recognize_hist: HistogramSnapshot,
    /// Full end-to-end distribution.
    pub total_hist: HistogramSnapshot,
}

impl StatsSnapshot {
    /// Serializes as the `key=value` pairs used on the wire.
    pub fn to_wire(&self) -> String {
        format!(
            "submitted={} completed={} failed={} rejected={} shed={} cache_hits={} expired={} \
             sessions={} store_bytes={} region_hits={} region_misses={} region_evictions={} \
             region_splices={} region_bytes={} \
             basis_cache_hits={} basis_cache_misses={} basis_cache_evictions={} \
             basis_cache_bytes={} basis_cache_entries={} kernel={} \
             queue_depth={} workers={} intra_pool_size={} intra_busy={} intra_queued={} \
             templates_pruned={} workspace_high_water_bytes={} \
             batched_requests={} batch_size_p50={} batch_size_p95={} batch_flush_deadline={} \
             session_yields={} \
             snapshot_last_save_us={} snapshot_bytes={} warm_start={} \
             queue_wait_p50_us={} queue_wait_p95_us={} queue_wait_p99_us={} \
             parse_p50_us={} parse_p95_us={} parse_p99_us={} \
             recognize_p50_us={} recognize_p95_us={} recognize_p99_us={} \
             total_p50_us={} total_p95_us={} total_p99_us={} total_p999_us={} total_mean_us={} \
             queue_wait_hist={} parse_hist={} recognize_hist={} total_hist={}",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.shed,
            self.cache_hits,
            self.expired,
            self.sessions,
            self.store_bytes,
            self.region_hits,
            self.region_misses,
            self.region_evictions,
            self.region_splices,
            self.region_bytes,
            self.basis_cache_hits,
            self.basis_cache_misses,
            self.basis_cache_evictions,
            self.basis_cache_bytes,
            self.basis_cache_entries,
            self.kernel,
            self.queue_depth,
            self.workers,
            self.intra_pool_size,
            self.intra_busy,
            self.intra_queued,
            self.templates_pruned,
            self.workspace_high_water_bytes,
            self.batched_requests,
            self.batch_size_p50,
            self.batch_size_p95,
            self.batch_flush_deadline,
            self.session_yields,
            self.snapshot_last_save_us,
            self.snapshot_bytes,
            u64::from(self.warm_start),
            self.queue_wait_p50_us,
            self.queue_wait_p95_us,
            self.queue_wait_p99_us,
            self.parse_p50_us,
            self.parse_p95_us,
            self.parse_p99_us,
            self.recognize_p50_us,
            self.recognize_p95_us,
            self.recognize_p99_us,
            self.total_p50_us,
            self.total_p95_us,
            self.total_p99_us,
            self.total_p999_us,
            self.total_mean_us,
            self.queue_wait_hist.encode(),
            self.parse_hist.encode(),
            self.recognize_hist.encode(),
            self.total_hist.encode(),
        )
    }

    /// Folds per-shard snapshots into one fleet view. Counters and gauges
    /// that add up across processes (job counts, cache traffic, queue
    /// depth, worker/session totals) are summed; per-stage histograms are
    /// merged bucket-wise and every percentile field is recomputed from
    /// the merged distribution — a real fleet percentile. A stage whose
    /// merged histogram is empty (e.g. snapshots from a build that did not
    /// send histograms) falls back to the worst shard (max), as do
    /// non-mergeable high-water figures; `warm_start` is true only when
    /// every shard warm-started. Aggregating nothing yields the default
    /// (all-zero) snapshot.
    pub fn aggregate<'a>(shards: impl IntoIterator<Item = &'a StatsSnapshot>) -> StatsSnapshot {
        let mut fleet = StatsSnapshot::default();
        let mut any = false;
        for shard in shards {
            fleet.submitted += shard.submitted;
            fleet.completed += shard.completed;
            fleet.failed += shard.failed;
            fleet.rejected += shard.rejected;
            fleet.shed += shard.shed;
            fleet.cache_hits += shard.cache_hits;
            fleet.expired += shard.expired;
            fleet.sessions += shard.sessions;
            fleet.store_bytes += shard.store_bytes;
            fleet.region_hits += shard.region_hits;
            fleet.region_misses += shard.region_misses;
            fleet.region_evictions += shard.region_evictions;
            fleet.region_splices += shard.region_splices;
            fleet.region_bytes += shard.region_bytes;
            fleet.basis_cache_hits += shard.basis_cache_hits;
            fleet.basis_cache_misses += shard.basis_cache_misses;
            fleet.basis_cache_evictions += shard.basis_cache_evictions;
            fleet.basis_cache_bytes += shard.basis_cache_bytes;
            fleet.basis_cache_entries += shard.basis_cache_entries;
            // One dispatch decision per process: shards normally agree, and
            // a split fleet (mid-rollout, mixed hardware) reads `mixed`.
            if !any {
                fleet.kernel = shard.kernel.clone();
            } else if fleet.kernel != shard.kernel {
                fleet.kernel = "mixed".to_string();
            }
            fleet.queue_depth += shard.queue_depth;
            fleet.workers += shard.workers;
            fleet.intra_pool_size += shard.intra_pool_size;
            fleet.intra_busy += shard.intra_busy;
            fleet.intra_queued += shard.intra_queued;
            fleet.templates_pruned += shard.templates_pruned;
            fleet.batched_requests += shard.batched_requests;
            fleet.batch_flush_deadline += shard.batch_flush_deadline;
            fleet.session_yields += shard.session_yields;
            fleet.snapshot_bytes += shard.snapshot_bytes;
            fleet.workspace_high_water_bytes = fleet
                .workspace_high_water_bytes
                .max(shard.workspace_high_water_bytes);
            fleet.queue_wait_p50_us = fleet.queue_wait_p50_us.max(shard.queue_wait_p50_us);
            fleet.queue_wait_p95_us = fleet.queue_wait_p95_us.max(shard.queue_wait_p95_us);
            fleet.queue_wait_p99_us = fleet.queue_wait_p99_us.max(shard.queue_wait_p99_us);
            fleet.parse_p50_us = fleet.parse_p50_us.max(shard.parse_p50_us);
            fleet.parse_p95_us = fleet.parse_p95_us.max(shard.parse_p95_us);
            fleet.parse_p99_us = fleet.parse_p99_us.max(shard.parse_p99_us);
            fleet.recognize_p50_us = fleet.recognize_p50_us.max(shard.recognize_p50_us);
            fleet.recognize_p95_us = fleet.recognize_p95_us.max(shard.recognize_p95_us);
            fleet.recognize_p99_us = fleet.recognize_p99_us.max(shard.recognize_p99_us);
            fleet.total_p50_us = fleet.total_p50_us.max(shard.total_p50_us);
            fleet.total_p95_us = fleet.total_p95_us.max(shard.total_p95_us);
            fleet.total_p99_us = fleet.total_p99_us.max(shard.total_p99_us);
            fleet.total_p999_us = fleet.total_p999_us.max(shard.total_p999_us);
            fleet.total_mean_us = fleet.total_mean_us.max(shard.total_mean_us);
            fleet.batch_size_p50 = fleet.batch_size_p50.max(shard.batch_size_p50);
            fleet.batch_size_p95 = fleet.batch_size_p95.max(shard.batch_size_p95);
            // Oldest save is the fleet's staleness bound.
            fleet.snapshot_last_save_us =
                fleet.snapshot_last_save_us.max(shard.snapshot_last_save_us);
            fleet.warm_start = if any {
                fleet.warm_start && shard.warm_start
            } else {
                shard.warm_start
            };
            fleet.queue_wait_hist.merge(&shard.queue_wait_hist);
            fleet.parse_hist.merge(&shard.parse_hist);
            fleet.recognize_hist.merge(&shard.recognize_hist);
            fleet.total_hist.merge(&shard.total_hist);
            any = true;
        }
        if fleet.queue_wait_hist.samples() > 0 {
            fleet.queue_wait_p50_us = fleet.queue_wait_hist.quantile_us(0.5);
            fleet.queue_wait_p95_us = fleet.queue_wait_hist.quantile_us(0.95);
            fleet.queue_wait_p99_us = fleet.queue_wait_hist.quantile_us(0.99);
        }
        if fleet.parse_hist.samples() > 0 {
            fleet.parse_p50_us = fleet.parse_hist.quantile_us(0.5);
            fleet.parse_p95_us = fleet.parse_hist.quantile_us(0.95);
            fleet.parse_p99_us = fleet.parse_hist.quantile_us(0.99);
        }
        if fleet.recognize_hist.samples() > 0 {
            fleet.recognize_p50_us = fleet.recognize_hist.quantile_us(0.5);
            fleet.recognize_p95_us = fleet.recognize_hist.quantile_us(0.95);
            fleet.recognize_p99_us = fleet.recognize_hist.quantile_us(0.99);
        }
        if fleet.total_hist.samples() > 0 {
            fleet.total_p50_us = fleet.total_hist.quantile_us(0.5);
            fleet.total_p95_us = fleet.total_hist.quantile_us(0.95);
            fleet.total_p99_us = fleet.total_hist.quantile_us(0.99);
            fleet.total_p999_us = fleet.total_hist.quantile_us(0.999);
            fleet.total_mean_us = fleet.total_hist.mean_us();
        }
        fleet
    }

    /// Parses the wire form back into a snapshot (used by `gana submit`).
    pub fn from_wire(text: &str) -> Option<StatsSnapshot> {
        let mut snap = StatsSnapshot::default();
        for pair in text.split_whitespace() {
            let (key, value) = pair.split_once('=')?;
            match key {
                "kernel" => snap.kernel = value.to_string(),
                "queue_wait_hist" => snap.queue_wait_hist = HistogramSnapshot::decode(value)?,
                "parse_hist" => snap.parse_hist = HistogramSnapshot::decode(value)?,
                "recognize_hist" => snap.recognize_hist = HistogramSnapshot::decode(value)?,
                "total_hist" => snap.total_hist = HistogramSnapshot::decode(value)?,
                _ => {
                    let n: u64 = value.parse().ok()?;
                    match key {
                        "submitted" => snap.submitted = n,
                        "completed" => snap.completed = n,
                        "failed" => snap.failed = n,
                        "rejected" => snap.rejected = n,
                        "shed" => snap.shed = n,
                        "cache_hits" => snap.cache_hits = n,
                        "expired" => snap.expired = n,
                        "sessions" => snap.sessions = n as usize,
                        "store_bytes" => snap.store_bytes = n,
                        "region_hits" => snap.region_hits = n,
                        "region_misses" => snap.region_misses = n,
                        "region_evictions" => snap.region_evictions = n,
                        "region_splices" => snap.region_splices = n,
                        "region_bytes" => snap.region_bytes = n,
                        "basis_cache_hits" => snap.basis_cache_hits = n,
                        "basis_cache_misses" => snap.basis_cache_misses = n,
                        "basis_cache_evictions" => snap.basis_cache_evictions = n,
                        "basis_cache_bytes" => snap.basis_cache_bytes = n,
                        "basis_cache_entries" => snap.basis_cache_entries = n,
                        "queue_depth" => snap.queue_depth = n as usize,
                        "workers" => snap.workers = n as usize,
                        "intra_pool_size" => snap.intra_pool_size = n as usize,
                        "intra_busy" => snap.intra_busy = n as usize,
                        "intra_queued" => snap.intra_queued = n as usize,
                        "templates_pruned" => snap.templates_pruned = n,
                        "workspace_high_water_bytes" => snap.workspace_high_water_bytes = n,
                        "queue_wait_p50_us" => snap.queue_wait_p50_us = n,
                        "queue_wait_p95_us" => snap.queue_wait_p95_us = n,
                        "queue_wait_p99_us" => snap.queue_wait_p99_us = n,
                        "parse_p50_us" => snap.parse_p50_us = n,
                        "parse_p95_us" => snap.parse_p95_us = n,
                        "parse_p99_us" => snap.parse_p99_us = n,
                        "recognize_p50_us" => snap.recognize_p50_us = n,
                        "recognize_p95_us" => snap.recognize_p95_us = n,
                        "recognize_p99_us" => snap.recognize_p99_us = n,
                        "total_p50_us" => snap.total_p50_us = n,
                        "total_p95_us" => snap.total_p95_us = n,
                        "total_p99_us" => snap.total_p99_us = n,
                        "total_p999_us" => snap.total_p999_us = n,
                        "total_mean_us" => snap.total_mean_us = n,
                        "batched_requests" => snap.batched_requests = n,
                        "batch_size_p50" => snap.batch_size_p50 = n,
                        "batch_size_p95" => snap.batch_size_p95 = n,
                        "batch_flush_deadline" => snap.batch_flush_deadline = n,
                        "session_yields" => snap.session_yields = n,
                        "snapshot_last_save_us" => snap.snapshot_last_save_us = n,
                        "snapshot_bytes" => snap.snapshot_bytes = n,
                        "warm_start" => snap.warm_start = n != 0,
                        _ => return None,
                    }
                }
            }
        }
        Some(snap)
    }
}

/// Formats one latency figure for the human-readable stats line. Every
/// stage goes through this single helper so all figures share one unit
/// rule — previously a sub-microsecond parse printed a bare `0` beside
/// millisecond-scale recognize figures under one "µs" banner. Wire-format
/// fields stay raw integer microseconds; only the display changes.
fn human_us(us: u64) -> String {
    if us == 0 {
        "<1µs".to_string()
    } else if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl StatsSnapshot {
    /// Human summary of persistence state: boot mode, snapshot age, size.
    fn snapshot_summary(&self) -> String {
        let boot = if self.warm_start {
            "warm start"
        } else {
            "cold start"
        };
        if self.snapshot_bytes == 0 {
            format!("{boot}, none saved")
        } else {
            format!(
                "{boot}, saved {} ago ({} B)",
                human_us(self.snapshot_last_save_us),
                self.snapshot_bytes
            )
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} rejected, {} shed, \
             {} cache hits, {} expired | sessions: {} open, {} B store, \
             region cache {}/{} hit, \
             {} spliced, {} B, {} evicted | basis cache: {}/{} hit, {} entries, \
             {} B, {} evicted | kernel: {} | queue: {} deep, {} workers | intra pool: \
             {} threads/worker, {} busy, {} queued | workspace: {} templates \
             pruned, {} B peak | batch: {} fused jobs, size p50/p95 {}/{}, \
             {} deadline flushes, {} session yields | snapshot: {} | latency \
             p50/p95/p99: wait {}/{}/{}, parse {}/{}/{}, recognize {}/{}/{}, \
             total {}/{}/{} (p999 {}, mean {})",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.shed,
            self.cache_hits,
            self.expired,
            self.sessions,
            self.store_bytes,
            self.region_hits,
            self.region_hits + self.region_misses,
            self.region_splices,
            self.region_bytes,
            self.region_evictions,
            self.basis_cache_hits,
            self.basis_cache_hits + self.basis_cache_misses,
            self.basis_cache_entries,
            self.basis_cache_bytes,
            self.basis_cache_evictions,
            if self.kernel.is_empty() {
                "unknown"
            } else {
                &self.kernel
            },
            self.queue_depth,
            self.workers,
            self.intra_pool_size,
            self.intra_busy,
            self.intra_queued,
            self.templates_pruned,
            self.workspace_high_water_bytes,
            self.batched_requests,
            self.batch_size_p50,
            self.batch_size_p95,
            self.batch_flush_deadline,
            self.session_yields,
            self.snapshot_summary(),
            human_us(self.queue_wait_p50_us),
            human_us(self.queue_wait_p95_us),
            human_us(self.queue_wait_p99_us),
            human_us(self.parse_p50_us),
            human_us(self.parse_p95_us),
            human_us(self.parse_p99_us),
            human_us(self.recognize_p50_us),
            human_us(self.recognize_p95_us),
            human_us(self.recognize_p99_us),
            human_us(self.total_p50_us),
            human_us(self.total_p95_us),
            human_us(self.total_p99_us),
            human_us(self.total_p999_us),
            human_us(self.total_mean_us),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 5);
        // Sub-32µs values land in exact buckets.
        assert_eq!(h.quantile_us(0.5), 30);
        let p95 = h.quantile_us(0.95);
        assert!(p95 >= 1000, "p95 covers the outlier: {p95}");
        assert_eq!(h.mean_us(), (10 + 20 + 30 + 40 + 1000) / 5);
    }

    #[test]
    fn histogram_relative_error_is_bounded() {
        // The reported quantile for a single-sample histogram is that
        // bucket's upper bound: never below the sample, and at most
        // 1/SUB_COUNT (plus the integer bucket edge) above it.
        for value in [
            0u64,
            1,
            31,
            32,
            33,
            100,
            1_000,
            4_095,
            4_096,
            65_537,
            1_000_000,
            u64::MAX / 3,
        ] {
            let h = LatencyHistogram::default();
            h.record(Duration::from_micros(value));
            let reported = h.quantile_us(0.5);
            assert!(reported >= value, "value {value}: reported {reported}");
            let bound = value + value / SUB_COUNT + 1;
            assert!(
                reported <= bound,
                "value {value}: reported {reported} > bound {bound}"
            );
        }
    }

    #[test]
    fn bucket_index_is_monotonic_and_value_inverts_it() {
        let mut prev = 0usize;
        for us in (0..4096u64).chain((12..40).map(|b| (1u64 << b) - 3)) {
            let index = bucket_index(us);
            assert!(index >= prev, "index must not decrease at {us}");
            prev = index;
            assert!(bucket_value(index) >= us, "upper bound covers {us}");
            assert!(index < HIST_BUCKETS);
        }
        assert_eq!(bucket_index(u64::MAX), HIST_BUCKETS - 1);
        assert_eq!(bucket_value(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn snapshot_conserves_counts_and_round_trips_the_wire() {
        let h = LatencyHistogram::default();
        let samples = [3u64, 3, 17, 450, 450, 450, 9_000, 1_000_000];
        for us in samples {
            h.record(Duration::from_micros(us));
        }
        let snap = h.snapshot();
        assert_eq!(snap.samples(), samples.len() as u64);
        assert_eq!(
            snap.buckets.iter().map(|&(_, c)| c).sum::<u64>(),
            samples.len() as u64,
            "every sample is in exactly one bucket"
        );
        let decoded = HistogramSnapshot::decode(&snap.encode()).expect("parses");
        assert_eq!(snap, decoded);
        // Quantiles agree between the live histogram and its snapshot.
        for q in [0.0, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile_us(q), snap.quantile_us(q));
        }
        // Empty snapshots encode as the placeholder token.
        let empty = HistogramSnapshot::default();
        assert_eq!(empty.encode(), "-");
        assert_eq!(HistogramSnapshot::decode("-"), Some(empty));
        assert!(HistogramSnapshot::decode("12;bogus").is_none());
    }

    #[test]
    fn merged_snapshots_equal_concatenated_samples() {
        let (a, b) = (LatencyHistogram::default(), LatencyHistogram::default());
        let both = LatencyHistogram::default();
        for us in [5u64, 80, 80, 2_000] {
            a.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        for us in [7u64, 80, 500_000] {
            b.record(Duration::from_micros(us));
            both.record(Duration::from_micros(us));
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
    }

    #[test]
    fn size_histogram_quantiles_are_exact() {
        let h = SizeHistogram::default();
        for size in [1usize, 1, 4, 8, 8, 8, 8] {
            h.record(size);
        }
        assert_eq!(h.samples(), 7);
        assert_eq!(h.quantile(0.5), 8, "exact, not a power-of-two bound");
        assert_eq!(h.quantile(0.95), 8);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(SizeHistogram::default().quantile(0.5), 0, "empty reads 0");
        // Oversized observations clamp into the last slot instead of lost.
        let big = SizeHistogram::default();
        big.record(10_000);
        assert_eq!(big.quantile(0.5), (SIZE_BUCKETS - 1) as u64);
    }

    #[test]
    fn display_formats_all_latencies_uniformly() {
        assert_eq!(human_us(0), "<1µs");
        assert_eq!(human_us(999), "999µs");
        assert_eq!(human_us(1_500), "1.5ms");
        assert_eq!(human_us(2_345_678), "2.35s");
        let snap = StatsSnapshot {
            parse_p50_us: 0,
            recognize_p50_us: 2048,
            total_mean_us: 900,
            ..StatsSnapshot::default()
        };
        let text = snap.to_string();
        // One unit rule for every stage: the sub-µs stage is labeled, not a
        // bare 0, and ms-scale figures carry their unit.
        assert!(text.contains("parse <1µs"), "{text}");
        assert!(text.contains("recognize 2.0ms"), "{text}");
        assert!(text.contains("mean 900µs)"), "{text}");
        assert!(!text.contains("latency µs:"), "{text}");
    }

    #[test]
    fn display_reports_snapshot_age_and_boot_mode() {
        let cold = StatsSnapshot::default();
        assert!(cold
            .to_string()
            .contains("snapshot: cold start, none saved"));
        let warm = StatsSnapshot {
            warm_start: true,
            snapshot_last_save_us: 2_000_000,
            snapshot_bytes: 4096,
            ..StatsSnapshot::default()
        };
        let text = warm.to_string();
        assert!(
            text.contains("snapshot: warm start, saved 2.00s ago (4096 B)"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_wire_round_trip() {
        let metrics = Metrics::default();
        metrics.submitted.store(17, Ordering::Relaxed);
        metrics.completed.store(15, Ordering::Relaxed);
        metrics.shed.store(3, Ordering::Relaxed);
        metrics.total.record(Duration::from_micros(500));
        metrics.queue_wait.record(Duration::from_micros(90));
        metrics.batched_requests.store(6, Ordering::Relaxed);
        metrics.batch_flush_deadline.store(2, Ordering::Relaxed);
        metrics.session_yields.store(4, Ordering::Relaxed);
        metrics.batch_sizes.record(3);
        metrics.batch_sizes.record(8);
        let region = RegionCacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            splices: 4,
            bytes: 4096,
            entries: 6,
        };
        let snap = metrics.snapshot(
            3,
            8,
            2,
            7168,
            region,
            GaugeSnapshot {
                size: 2,
                busy: 1,
                queued: 5,
            },
            WorkspaceStats {
                templates_pruned: 42,
                high_water_bytes: 65536,
            },
            SnapshotGauge {
                last_save_us: 2_500_000,
                bytes: 8192,
                warm_start: true,
            },
            BasisCacheStats {
                hits: 11,
                misses: 3,
                evictions: 1,
                bytes: 2048,
                entries: 2,
            },
            "avx2",
        );
        assert_eq!(snap.store_bytes, 7168);
        assert_eq!(snap.basis_cache_hits, 11);
        assert_eq!(snap.basis_cache_misses, 3);
        assert_eq!(snap.basis_cache_evictions, 1);
        assert_eq!(snap.basis_cache_bytes, 2048);
        assert_eq!(snap.basis_cache_entries, 2);
        assert_eq!(snap.kernel, "avx2");
        assert_eq!(snap.intra_pool_size, 2);
        assert_eq!(snap.snapshot_last_save_us, 2_500_000);
        assert_eq!(snap.snapshot_bytes, 8192);
        assert!(snap.warm_start);
        assert_eq!(snap.intra_busy, 1);
        assert_eq!(snap.intra_queued, 5);
        assert_eq!(snap.templates_pruned, 42);
        assert_eq!(snap.workspace_high_water_bytes, 65536);
        assert_eq!(snap.batched_requests, 6);
        assert_eq!(snap.batch_size_p50, 3);
        assert_eq!(snap.batch_size_p95, 8);
        assert_eq!(snap.batch_flush_deadline, 2);
        assert_eq!(snap.shed, 3);
        assert_eq!(snap.session_yields, 4);
        assert_eq!(snap.total_hist.samples(), 1);
        assert_eq!(snap.queue_wait_hist.samples(), 1);
        let wire = snap.to_wire();
        let back = StatsSnapshot::from_wire(&wire).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn aggregate_merges_histograms_into_fleet_percentiles() {
        // Shard A saw fast jobs, shard B slow ones; the fleet p50 must sit
        // between them (a real merged percentile), not at shard B's p50
        // (the old worst-shard max rule).
        let (fast, slow) = (Metrics::default(), Metrics::default());
        for _ in 0..90 {
            fast.total.record(Duration::from_micros(100));
        }
        for _ in 0..10 {
            slow.total.record(Duration::from_micros(10_000));
        }
        let a = StatsSnapshot {
            total_p50_us: fast.total.quantile_us(0.5),
            total_hist: fast.total.snapshot(),
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            total_p50_us: slow.total.quantile_us(0.5),
            total_hist: slow.total.snapshot(),
            ..StatsSnapshot::default()
        };
        let fleet = StatsSnapshot::aggregate([&a, &b]);
        assert_eq!(fleet.total_hist.samples(), 100);
        assert!(
            fleet.total_p50_us <= 104,
            "fleet p50 ~100µs, not the slow shard's 10ms: {}",
            fleet.total_p50_us
        );
        assert!(fleet.total_p999_us >= 10_000, "tail sees the slow shard");
    }

    #[test]
    fn aggregate_sums_counters_and_maxes_percentiles() {
        let a = StatsSnapshot {
            submitted: 10,
            completed: 9,
            failed: 1,
            shed: 2,
            sessions: 2,
            store_bytes: 3000,
            queue_depth: 3,
            workers: 4,
            region_hits: 7,
            region_bytes: 100,
            basis_cache_hits: 20,
            basis_cache_bytes: 512,
            basis_cache_entries: 2,
            kernel: "avx2".to_string(),
            total_p95_us: 800,
            session_yields: 1,
            workspace_high_water_bytes: 4096,
            snapshot_last_save_us: 1_000,
            snapshot_bytes: 50,
            warm_start: true,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            submitted: 5,
            completed: 5,
            shed: 1,
            sessions: 1,
            store_bytes: 1500,
            queue_depth: 1,
            workers: 4,
            region_hits: 2,
            region_bytes: 40,
            basis_cache_hits: 5,
            basis_cache_misses: 4,
            basis_cache_bytes: 256,
            basis_cache_entries: 1,
            kernel: "avx2".to_string(),
            total_p95_us: 1200,
            session_yields: 2,
            workspace_high_water_bytes: 1024,
            snapshot_last_save_us: 9_000,
            snapshot_bytes: 60,
            warm_start: true,
            ..StatsSnapshot::default()
        };
        let fleet = StatsSnapshot::aggregate([&a, &b]);
        assert_eq!(fleet.submitted, 15);
        assert_eq!(fleet.completed, 14);
        assert_eq!(fleet.failed, 1);
        assert_eq!(fleet.shed, 3);
        assert_eq!(fleet.sessions, 3);
        assert_eq!(fleet.store_bytes, 4500);
        assert_eq!(fleet.queue_depth, 4);
        assert_eq!(fleet.workers, 8);
        assert_eq!(fleet.region_hits, 9);
        assert_eq!(fleet.region_bytes, 140);
        assert_eq!(fleet.basis_cache_hits, 25);
        assert_eq!(fleet.basis_cache_misses, 4);
        assert_eq!(fleet.basis_cache_bytes, 768);
        assert_eq!(fleet.basis_cache_entries, 3);
        assert_eq!(fleet.kernel, "avx2", "agreeing shards keep the name");
        assert_eq!(fleet.session_yields, 3);
        assert_eq!(
            fleet.total_p95_us, 1200,
            "no histograms: falls back to worst shard"
        );
        assert_eq!(fleet.workspace_high_water_bytes, 4096);
        assert_eq!(fleet.snapshot_last_save_us, 9_000, "oldest save wins");
        assert_eq!(fleet.snapshot_bytes, 110);
        assert!(fleet.warm_start, "all shards warm");

        let cold = StatsSnapshot::default();
        let split = StatsSnapshot::aggregate([&a, &cold]);
        assert!(!split.warm_start, "one cold shard makes the fleet cold");
        assert_eq!(split.kernel, "mixed", "disagreeing shards read mixed");
        let none: [&StatsSnapshot; 0] = [];
        assert_eq!(StatsSnapshot::aggregate(none), StatsSnapshot::default());
    }
}
