//! Lock-free service metrics: counters plus per-stage latency histograms.
//!
//! Latencies land in logarithmic (power-of-two microsecond) buckets, so a
//! histogram is a fixed array of atomics — recording is wait-free and a
//! quantile read is a single sweep. Quantiles are therefore bucket-upper-bound
//! approximations (within 2× of the true value), which is plenty for spotting
//! regressions and overload.

use gana_incremental::RegionCacheStats;
use gana_par::GaugeSnapshot;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 40;

/// Wait-free latency histogram over power-of-two microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    counts: [AtomicU64; BUCKETS],
    total_us: AtomicU64,
    samples: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> LatencyHistogram {
        LatencyHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            total_us: AtomicU64::new(0),
            samples: AtomicU64::new(0),
        }
    }
}

impl LatencyHistogram {
    /// Records one duration.
    pub fn record(&self, latency: Duration) {
        let us = latency.as_micros().min(u64::MAX as u128) as u64;
        let bucket = (64 - us.leading_zeros() as usize).min(BUCKETS - 1);
        self.counts[bucket].fetch_add(1, Ordering::Relaxed);
        self.total_us.fetch_add(us, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Mean latency in microseconds (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us
            .load(Ordering::Relaxed)
            .checked_div(self.samples())
            .unwrap_or(0)
    }

    /// Approximate quantile (`q` in `[0,1]`) in microseconds: the upper bound
    /// of the bucket containing the q-th sample.
    pub fn quantile_us(&self, q: f64) -> u64 {
        let n = self.samples();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (bucket, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                // Bucket b holds values with highest set bit b-1, i.e. < 2^b.
                return if bucket == 0 { 0 } else { 1u64 << bucket };
            }
        }
        1u64 << (BUCKETS - 1)
    }
}

/// Exact micro-batch sizes land in their own slot up to this cap (larger
/// batches clamp into the last slot). Serving batches are single-digit to
/// low-double-digit, so exact small buckets beat the latency histogram's
/// power-of-two bounds, which would report a batch of 8 as "≤16".
const SIZE_BUCKETS: usize = 65;

/// Wait-free histogram over exact small integer sizes (micro-batch sizes).
#[derive(Debug)]
pub struct SizeHistogram {
    counts: [AtomicU64; SIZE_BUCKETS],
    samples: AtomicU64,
}

impl Default for SizeHistogram {
    fn default() -> SizeHistogram {
        SizeHistogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            samples: AtomicU64::new(0),
        }
    }
}

impl SizeHistogram {
    /// Records one size observation.
    pub fn record(&self, size: usize) {
        self.counts[size.min(SIZE_BUCKETS - 1)].fetch_add(1, Ordering::Relaxed);
        self.samples.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of recorded observations.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Relaxed)
    }

    /// Exact quantile (`q` in `[0,1]`): the size of the q-th observation
    /// (0 when empty; sizes above the cap read as the cap).
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.samples();
        if n == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (size, count) in self.counts.iter().enumerate() {
            seen += count.load(Ordering::Relaxed);
            if seen >= rank {
                return size as u64;
            }
        }
        (SIZE_BUCKETS - 1) as u64
    }
}

/// All counters and histograms of one [`Engine`](crate::Engine).
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted into the queue.
    pub submitted: AtomicU64,
    /// Jobs finished successfully.
    pub completed: AtomicU64,
    /// Jobs finished with a structured error.
    pub failed: AtomicU64,
    /// Submissions rejected with `QueueFull`.
    pub rejected: AtomicU64,
    /// Jobs answered from the result cache without touching a worker.
    pub cache_hits: AtomicU64,
    /// Jobs dropped before processing (deadline passed or cancelled).
    pub expired: AtomicU64,
    /// Time from submission to a worker picking the job up.
    pub queue_wait: LatencyHistogram,
    /// SPICE parse + flatten stage.
    pub parse: LatencyHistogram,
    /// GCN + postprocessing recognition stage.
    pub recognize: LatencyHistogram,
    /// Submission to reply, including queueing.
    pub total: LatencyHistogram,
    /// Jobs whose GCN forward ran inside a fused micro-batch of ≥ 2.
    pub batched_requests: AtomicU64,
    /// Fused forwards run by the batcher, by batch size.
    pub batch_sizes: SizeHistogram,
    /// Batch flushes forced by a member's deadline before the batch window
    /// elapsed or the batch filled.
    pub batch_flush_deadline: AtomicU64,
}

impl Metrics {
    /// Immutable snapshot (counters may lag each other by in-flight jobs).
    /// `sessions` and `region` come from the engine's session store and
    /// shared region cache; `intra` from the shared intra-request pool
    /// gauge; `workspace` aggregates the per-worker annotation workspaces.
    #[allow(clippy::too_many_arguments)]
    pub fn snapshot(
        &self,
        queue_depth: usize,
        workers: usize,
        sessions: usize,
        region: RegionCacheStats,
        intra: GaugeSnapshot,
        workspace: WorkspaceStats,
        persistence: SnapshotGauge,
    ) -> StatsSnapshot {
        StatsSnapshot {
            sessions,
            snapshot_last_save_us: persistence.last_save_us,
            snapshot_bytes: persistence.bytes,
            warm_start: persistence.warm_start,
            intra_pool_size: intra.size,
            intra_busy: intra.busy,
            intra_queued: intra.queued,
            templates_pruned: workspace.templates_pruned,
            workspace_high_water_bytes: workspace.high_water_bytes,
            region_hits: region.hits,
            region_misses: region.misses,
            region_evictions: region.evictions,
            region_splices: region.splices,
            region_bytes: region.bytes,
            submitted: self.submitted.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            expired: self.expired.load(Ordering::Relaxed),
            queue_depth,
            workers,
            queue_wait_p50_us: self.queue_wait.quantile_us(0.5),
            queue_wait_p95_us: self.queue_wait.quantile_us(0.95),
            parse_p50_us: self.parse.quantile_us(0.5),
            parse_p95_us: self.parse.quantile_us(0.95),
            recognize_p50_us: self.recognize.quantile_us(0.5),
            recognize_p95_us: self.recognize.quantile_us(0.95),
            total_p50_us: self.total.quantile_us(0.5),
            total_p95_us: self.total.quantile_us(0.95),
            total_mean_us: self.total.mean_us(),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            batch_size_p50: self.batch_sizes.quantile(0.5),
            batch_size_p95: self.batch_sizes.quantile(0.95),
            batch_flush_deadline: self.batch_flush_deadline.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time persistence state, computed by the engine at stats time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotGauge {
    /// Microseconds since the last successful snapshot save (`0` when no
    /// snapshot has been written by this process yet).
    pub last_save_us: u64,
    /// Size in bytes of the last written snapshot (`0` when none).
    pub bytes: u64,
    /// True when the engine was restored from a snapshot at boot.
    pub warm_start: bool,
}

/// Aggregate view of the per-worker annotation workspaces, computed by the
/// engine at snapshot time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkspaceStats {
    /// Templates skipped by the VF2 prefilter, summed over all workers.
    pub templates_pruned: u64,
    /// Largest steady-state inference-buffer footprint (bytes) any single
    /// worker has reached.
    pub high_water_bytes: u64,
}

/// Point-in-time view of the engine counters, used by the `stats` request
/// and the periodic log line.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Jobs accepted into the queue.
    pub submitted: u64,
    /// Jobs finished successfully.
    pub completed: u64,
    /// Jobs finished with a structured error.
    pub failed: u64,
    /// Submissions rejected with `QueueFull`.
    pub rejected: u64,
    /// Jobs answered from the result cache.
    pub cache_hits: u64,
    /// Jobs dropped before processing (deadline/cancel).
    pub expired: u64,
    /// Open incremental sessions.
    pub sessions: usize,
    /// Region-cache (sub-block VF2) lookups answered from the cache.
    pub region_hits: u64,
    /// Region-cache lookups that ran the matcher.
    pub region_misses: u64,
    /// Region-cache entries evicted to stay under the byte budget.
    pub region_evictions: u64,
    /// Sub-block results spliced from prior session state.
    pub region_splices: u64,
    /// Bytes currently held by the region cache.
    pub region_bytes: u64,
    /// Jobs waiting in the queue right now.
    pub queue_depth: usize,
    /// Worker threads in the pool.
    pub workers: usize,
    /// Per-worker intra-request thread budget.
    pub intra_pool_size: usize,
    /// Intra-request pool workers currently executing items (all workers).
    pub intra_busy: usize,
    /// Intra-request items claimed by no worker yet (all workers).
    pub intra_queued: usize,
    /// Templates skipped by the VF2 candidate prefilter (all workers).
    pub templates_pruned: u64,
    /// Peak per-worker annotation-workspace footprint in bytes.
    pub workspace_high_water_bytes: u64,
    /// p50 queue wait (µs).
    pub queue_wait_p50_us: u64,
    /// p95 queue wait (µs).
    pub queue_wait_p95_us: u64,
    /// p50 parse stage (µs).
    pub parse_p50_us: u64,
    /// p95 parse stage (µs).
    pub parse_p95_us: u64,
    /// p50 recognize stage (µs).
    pub recognize_p50_us: u64,
    /// p95 recognize stage (µs).
    pub recognize_p95_us: u64,
    /// p50 end-to-end (µs).
    pub total_p50_us: u64,
    /// p95 end-to-end (µs).
    pub total_p95_us: u64,
    /// Mean end-to-end (µs).
    pub total_mean_us: u64,
    /// Jobs served from inside a fused micro-batch of ≥ 2.
    pub batched_requests: u64,
    /// Median fused-batch size (exact).
    pub batch_size_p50: u64,
    /// p95 fused-batch size (exact).
    pub batch_size_p95: u64,
    /// Batch flushes forced early by a member's deadline.
    pub batch_flush_deadline: u64,
    /// Microseconds since the last successful snapshot save (`0` = never).
    pub snapshot_last_save_us: u64,
    /// Size in bytes of the last written snapshot (`0` = none).
    pub snapshot_bytes: u64,
    /// True when the engine warm-started from a snapshot at boot.
    pub warm_start: bool,
}

impl StatsSnapshot {
    /// Serializes as the `key=value` pairs used on the wire.
    pub fn to_wire(&self) -> String {
        format!(
            "submitted={} completed={} failed={} rejected={} cache_hits={} expired={} \
             sessions={} region_hits={} region_misses={} region_evictions={} \
             region_splices={} region_bytes={} \
             queue_depth={} workers={} intra_pool_size={} intra_busy={} intra_queued={} \
             templates_pruned={} workspace_high_water_bytes={} \
             batched_requests={} batch_size_p50={} batch_size_p95={} batch_flush_deadline={} \
             snapshot_last_save_us={} snapshot_bytes={} warm_start={} \
             queue_wait_p50_us={} queue_wait_p95_us={} \
             parse_p50_us={} parse_p95_us={} recognize_p50_us={} recognize_p95_us={} \
             total_p50_us={} total_p95_us={} total_mean_us={}",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.cache_hits,
            self.expired,
            self.sessions,
            self.region_hits,
            self.region_misses,
            self.region_evictions,
            self.region_splices,
            self.region_bytes,
            self.queue_depth,
            self.workers,
            self.intra_pool_size,
            self.intra_busy,
            self.intra_queued,
            self.templates_pruned,
            self.workspace_high_water_bytes,
            self.batched_requests,
            self.batch_size_p50,
            self.batch_size_p95,
            self.batch_flush_deadline,
            self.snapshot_last_save_us,
            self.snapshot_bytes,
            u64::from(self.warm_start),
            self.queue_wait_p50_us,
            self.queue_wait_p95_us,
            self.parse_p50_us,
            self.parse_p95_us,
            self.recognize_p50_us,
            self.recognize_p95_us,
            self.total_p50_us,
            self.total_p95_us,
            self.total_mean_us,
        )
    }

    /// Folds per-shard snapshots into one fleet view. Counters and gauges
    /// that add up across processes (job counts, cache traffic, queue
    /// depth, worker/session totals) are summed; percentile and high-water
    /// figures are not additive, so the fleet reports the worst shard
    /// (max); `warm_start` is true only when every shard warm-started.
    /// Aggregating nothing yields the default (all-zero) snapshot.
    pub fn aggregate<'a>(shards: impl IntoIterator<Item = &'a StatsSnapshot>) -> StatsSnapshot {
        let mut fleet = StatsSnapshot::default();
        let mut any = false;
        for shard in shards {
            fleet.submitted += shard.submitted;
            fleet.completed += shard.completed;
            fleet.failed += shard.failed;
            fleet.rejected += shard.rejected;
            fleet.cache_hits += shard.cache_hits;
            fleet.expired += shard.expired;
            fleet.sessions += shard.sessions;
            fleet.region_hits += shard.region_hits;
            fleet.region_misses += shard.region_misses;
            fleet.region_evictions += shard.region_evictions;
            fleet.region_splices += shard.region_splices;
            fleet.region_bytes += shard.region_bytes;
            fleet.queue_depth += shard.queue_depth;
            fleet.workers += shard.workers;
            fleet.intra_pool_size += shard.intra_pool_size;
            fleet.intra_busy += shard.intra_busy;
            fleet.intra_queued += shard.intra_queued;
            fleet.templates_pruned += shard.templates_pruned;
            fleet.batched_requests += shard.batched_requests;
            fleet.batch_flush_deadline += shard.batch_flush_deadline;
            fleet.snapshot_bytes += shard.snapshot_bytes;
            fleet.workspace_high_water_bytes = fleet
                .workspace_high_water_bytes
                .max(shard.workspace_high_water_bytes);
            fleet.queue_wait_p50_us = fleet.queue_wait_p50_us.max(shard.queue_wait_p50_us);
            fleet.queue_wait_p95_us = fleet.queue_wait_p95_us.max(shard.queue_wait_p95_us);
            fleet.parse_p50_us = fleet.parse_p50_us.max(shard.parse_p50_us);
            fleet.parse_p95_us = fleet.parse_p95_us.max(shard.parse_p95_us);
            fleet.recognize_p50_us = fleet.recognize_p50_us.max(shard.recognize_p50_us);
            fleet.recognize_p95_us = fleet.recognize_p95_us.max(shard.recognize_p95_us);
            fleet.total_p50_us = fleet.total_p50_us.max(shard.total_p50_us);
            fleet.total_p95_us = fleet.total_p95_us.max(shard.total_p95_us);
            fleet.total_mean_us = fleet.total_mean_us.max(shard.total_mean_us);
            fleet.batch_size_p50 = fleet.batch_size_p50.max(shard.batch_size_p50);
            fleet.batch_size_p95 = fleet.batch_size_p95.max(shard.batch_size_p95);
            // Oldest save is the fleet's staleness bound.
            fleet.snapshot_last_save_us =
                fleet.snapshot_last_save_us.max(shard.snapshot_last_save_us);
            fleet.warm_start = if any {
                fleet.warm_start && shard.warm_start
            } else {
                shard.warm_start
            };
            any = true;
        }
        fleet
    }

    /// Parses the wire form back into a snapshot (used by `gana submit`).
    pub fn from_wire(text: &str) -> Option<StatsSnapshot> {
        let mut snap = StatsSnapshot::default();
        for pair in text.split_whitespace() {
            let (key, value) = pair.split_once('=')?;
            let n: u64 = value.parse().ok()?;
            match key {
                "submitted" => snap.submitted = n,
                "completed" => snap.completed = n,
                "failed" => snap.failed = n,
                "rejected" => snap.rejected = n,
                "cache_hits" => snap.cache_hits = n,
                "expired" => snap.expired = n,
                "sessions" => snap.sessions = n as usize,
                "region_hits" => snap.region_hits = n,
                "region_misses" => snap.region_misses = n,
                "region_evictions" => snap.region_evictions = n,
                "region_splices" => snap.region_splices = n,
                "region_bytes" => snap.region_bytes = n,
                "queue_depth" => snap.queue_depth = n as usize,
                "workers" => snap.workers = n as usize,
                "intra_pool_size" => snap.intra_pool_size = n as usize,
                "intra_busy" => snap.intra_busy = n as usize,
                "intra_queued" => snap.intra_queued = n as usize,
                "templates_pruned" => snap.templates_pruned = n,
                "workspace_high_water_bytes" => snap.workspace_high_water_bytes = n,
                "queue_wait_p50_us" => snap.queue_wait_p50_us = n,
                "queue_wait_p95_us" => snap.queue_wait_p95_us = n,
                "parse_p50_us" => snap.parse_p50_us = n,
                "parse_p95_us" => snap.parse_p95_us = n,
                "recognize_p50_us" => snap.recognize_p50_us = n,
                "recognize_p95_us" => snap.recognize_p95_us = n,
                "total_p50_us" => snap.total_p50_us = n,
                "total_p95_us" => snap.total_p95_us = n,
                "total_mean_us" => snap.total_mean_us = n,
                "batched_requests" => snap.batched_requests = n,
                "batch_size_p50" => snap.batch_size_p50 = n,
                "batch_size_p95" => snap.batch_size_p95 = n,
                "batch_flush_deadline" => snap.batch_flush_deadline = n,
                "snapshot_last_save_us" => snap.snapshot_last_save_us = n,
                "snapshot_bytes" => snap.snapshot_bytes = n,
                "warm_start" => snap.warm_start = n != 0,
                _ => return None,
            }
        }
        Some(snap)
    }
}

/// Formats one latency figure for the human-readable stats line. Every
/// stage goes through this single helper so all figures share one unit
/// rule — previously a sub-microsecond parse printed a bare `0` beside
/// millisecond-scale recognize figures under one "µs" banner. Wire-format
/// fields stay raw integer microseconds; only the display changes.
fn human_us(us: u64) -> String {
    if us == 0 {
        "<1µs".to_string()
    } else if us < 1_000 {
        format!("{us}µs")
    } else if us < 1_000_000 {
        format!("{:.1}ms", us as f64 / 1_000.0)
    } else {
        format!("{:.2}s", us as f64 / 1_000_000.0)
    }
}

impl StatsSnapshot {
    /// Human summary of persistence state: boot mode, snapshot age, size.
    fn snapshot_summary(&self) -> String {
        let boot = if self.warm_start {
            "warm start"
        } else {
            "cold start"
        };
        if self.snapshot_bytes == 0 {
            format!("{boot}, none saved")
        } else {
            format!(
                "{boot}, saved {} ago ({} B)",
                human_us(self.snapshot_last_save_us),
                self.snapshot_bytes
            )
        }
    }
}

impl fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "jobs: {} submitted, {} completed, {} failed, {} rejected, {} cache hits, \
             {} expired | sessions: {} open, region cache {}/{} hit, {} spliced, \
             {} B, {} evicted | queue: {} deep, {} workers | intra pool: \
             {} threads/worker, {} busy, {} queued | workspace: {} templates \
             pruned, {} B peak | batch: {} fused jobs, size p50/p95 {}/{}, \
             {} deadline flushes | snapshot: {} | latency: \
             wait p50/p95 {}/{}, parse {}/{}, recognize {}/{}, total {}/{} (mean {})",
            self.submitted,
            self.completed,
            self.failed,
            self.rejected,
            self.cache_hits,
            self.expired,
            self.sessions,
            self.region_hits,
            self.region_hits + self.region_misses,
            self.region_splices,
            self.region_bytes,
            self.region_evictions,
            self.queue_depth,
            self.workers,
            self.intra_pool_size,
            self.intra_busy,
            self.intra_queued,
            self.templates_pruned,
            self.workspace_high_water_bytes,
            self.batched_requests,
            self.batch_size_p50,
            self.batch_size_p95,
            self.batch_flush_deadline,
            self.snapshot_summary(),
            human_us(self.queue_wait_p50_us),
            human_us(self.queue_wait_p95_us),
            human_us(self.parse_p50_us),
            human_us(self.parse_p95_us),
            human_us(self.recognize_p50_us),
            human_us(self.recognize_p95_us),
            human_us(self.total_p50_us),
            human_us(self.total_p95_us),
            human_us(self.total_mean_us),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = LatencyHistogram::default();
        for us in [10u64, 20, 30, 40, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.samples(), 5);
        let p50 = h.quantile_us(0.5);
        assert!((16..=64).contains(&p50), "p50 bucket bound: {p50}");
        let p95 = h.quantile_us(0.95);
        assert!(p95 >= 1000, "p95 covers the outlier: {p95}");
        assert_eq!(h.mean_us(), (10 + 20 + 30 + 40 + 1000) / 5);
    }

    #[test]
    fn size_histogram_quantiles_are_exact() {
        let h = SizeHistogram::default();
        for size in [1usize, 1, 4, 8, 8, 8, 8] {
            h.record(size);
        }
        assert_eq!(h.samples(), 7);
        assert_eq!(h.quantile(0.5), 8, "exact, not a power-of-two bound");
        assert_eq!(h.quantile(0.95), 8);
        assert_eq!(h.quantile(0.0), 1);
        assert_eq!(SizeHistogram::default().quantile(0.5), 0, "empty reads 0");
        // Oversized observations clamp into the last slot instead of lost.
        let big = SizeHistogram::default();
        big.record(10_000);
        assert_eq!(big.quantile(0.5), (SIZE_BUCKETS - 1) as u64);
    }

    #[test]
    fn display_formats_all_latencies_uniformly() {
        assert_eq!(human_us(0), "<1µs");
        assert_eq!(human_us(999), "999µs");
        assert_eq!(human_us(1_500), "1.5ms");
        assert_eq!(human_us(2_345_678), "2.35s");
        let snap = StatsSnapshot {
            parse_p50_us: 0,
            recognize_p50_us: 2048,
            total_mean_us: 900,
            ..StatsSnapshot::default()
        };
        let text = snap.to_string();
        // One unit rule for every stage: the sub-µs stage is labeled, not a
        // bare 0, and ms-scale figures carry their unit.
        assert!(text.contains("parse <1µs"), "{text}");
        assert!(text.contains("recognize 2.0ms"), "{text}");
        assert!(text.contains("(mean 900µs)"), "{text}");
        assert!(!text.contains("latency µs:"), "{text}");
    }

    #[test]
    fn display_reports_snapshot_age_and_boot_mode() {
        let cold = StatsSnapshot::default();
        assert!(cold
            .to_string()
            .contains("snapshot: cold start, none saved"));
        let warm = StatsSnapshot {
            warm_start: true,
            snapshot_last_save_us: 2_000_000,
            snapshot_bytes: 4096,
            ..StatsSnapshot::default()
        };
        let text = warm.to_string();
        assert!(
            text.contains("snapshot: warm start, saved 2.00s ago (4096 B)"),
            "{text}"
        );
    }

    #[test]
    fn snapshot_wire_round_trip() {
        let metrics = Metrics::default();
        metrics.submitted.store(17, Ordering::Relaxed);
        metrics.completed.store(15, Ordering::Relaxed);
        metrics.total.record(Duration::from_micros(500));
        metrics.batched_requests.store(6, Ordering::Relaxed);
        metrics.batch_flush_deadline.store(2, Ordering::Relaxed);
        metrics.batch_sizes.record(3);
        metrics.batch_sizes.record(8);
        let region = RegionCacheStats {
            hits: 5,
            misses: 2,
            evictions: 1,
            splices: 4,
            bytes: 4096,
            entries: 6,
        };
        let snap = metrics.snapshot(
            3,
            8,
            2,
            region,
            GaugeSnapshot {
                size: 2,
                busy: 1,
                queued: 5,
            },
            WorkspaceStats {
                templates_pruned: 42,
                high_water_bytes: 65536,
            },
            SnapshotGauge {
                last_save_us: 2_500_000,
                bytes: 8192,
                warm_start: true,
            },
        );
        assert_eq!(snap.intra_pool_size, 2);
        assert_eq!(snap.snapshot_last_save_us, 2_500_000);
        assert_eq!(snap.snapshot_bytes, 8192);
        assert!(snap.warm_start);
        assert_eq!(snap.intra_busy, 1);
        assert_eq!(snap.intra_queued, 5);
        assert_eq!(snap.templates_pruned, 42);
        assert_eq!(snap.workspace_high_water_bytes, 65536);
        assert_eq!(snap.batched_requests, 6);
        assert_eq!(snap.batch_size_p50, 3);
        assert_eq!(snap.batch_size_p95, 8);
        assert_eq!(snap.batch_flush_deadline, 2);
        let wire = snap.to_wire();
        let back = StatsSnapshot::from_wire(&wire).expect("parses");
        assert_eq!(snap, back);
    }

    #[test]
    fn aggregate_sums_counters_and_maxes_percentiles() {
        let a = StatsSnapshot {
            submitted: 10,
            completed: 9,
            failed: 1,
            sessions: 2,
            queue_depth: 3,
            workers: 4,
            region_hits: 7,
            region_bytes: 100,
            total_p95_us: 800,
            workspace_high_water_bytes: 4096,
            snapshot_last_save_us: 1_000,
            snapshot_bytes: 50,
            warm_start: true,
            ..StatsSnapshot::default()
        };
        let b = StatsSnapshot {
            submitted: 5,
            completed: 5,
            sessions: 1,
            queue_depth: 1,
            workers: 4,
            region_hits: 2,
            region_bytes: 40,
            total_p95_us: 1200,
            workspace_high_water_bytes: 1024,
            snapshot_last_save_us: 9_000,
            snapshot_bytes: 60,
            warm_start: true,
            ..StatsSnapshot::default()
        };
        let fleet = StatsSnapshot::aggregate([&a, &b]);
        assert_eq!(fleet.submitted, 15);
        assert_eq!(fleet.completed, 14);
        assert_eq!(fleet.failed, 1);
        assert_eq!(fleet.sessions, 3);
        assert_eq!(fleet.queue_depth, 4);
        assert_eq!(fleet.workers, 8);
        assert_eq!(fleet.region_hits, 9);
        assert_eq!(fleet.region_bytes, 140);
        assert_eq!(fleet.total_p95_us, 1200, "worst shard, not a sum");
        assert_eq!(fleet.workspace_high_water_bytes, 4096);
        assert_eq!(fleet.snapshot_last_save_us, 9_000, "oldest save wins");
        assert_eq!(fleet.snapshot_bytes, 110);
        assert!(fleet.warm_start, "all shards warm");

        let cold = StatsSnapshot::default();
        assert!(
            !StatsSnapshot::aggregate([&a, &cold]).warm_start,
            "one cold shard makes the fleet cold"
        );
        let none: [&StatsSnapshot; 0] = [];
        assert_eq!(StatsSnapshot::aggregate(none), StatsSnapshot::default());
    }
}
