//! The newline-delimited wire protocol shared by [`server`](crate::server)
//! and [`client`](crate::client).
//!
//! Every request and every response is exactly one line of UTF-8 text.
//! Payloads that contain newlines (SPICE netlists, hierarchical exports)
//! are escaped: `\` → `\\`, newline → `\n`, carriage return → `\r`, so the
//! framing stays trivially parseable with a buffered line reader.
//!
//! Requests:
//!
//! ```text
//! annotate <task> <deadline_ms|-> <escaped-netlist>
//! batch <n>                        # followed by n annotate lines
//! open <task> <escaped-netlist>    # stateful session: cold annotate
//! update <session> <escaped-netlist>  # incremental re-annotate
//! close <session>
//! stats
//! fleetstats                       # per-shard + aggregated fleet stats
//! ping
//! shutdown
//! ```
//!
//! Responses (one per request; a batch yields `n` lines in order):
//!
//! ```text
//! ok <escaped-annotation>
//! sess <session> <escaped-annotation>
//! closed <session>
//! err <code> <escaped-message>
//! stats <key=value ...>
//! fleet <escaped-record>           # aggregate + per-shard stats record
//! pong
//! bye
//! ```

use crate::job::{Annotation, JobError};
use gana_core::Task;

/// Escapes a payload into a single-line token (`\\`, `\n`, `\r`).
pub fn escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len() + 8);
    for ch in text.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            other => out.push(other),
        }
    }
    out
}

/// Reverses [`escape`]. Unknown escapes pass the escaped char through.
pub fn unescape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut chars = text.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('r') => out.push('\r'),
                Some('\\') => out.push('\\'),
                Some(other) => out.push(other),
                None => out.push('\\'),
            }
        } else {
            out.push(ch);
        }
    }
    out
}

/// One parsed request line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Annotate a netlist under a task, with an optional queue deadline.
    Annotate {
        /// Which pipeline to run.
        task: Task,
        /// Queue deadline in milliseconds, if any.
        deadline_ms: Option<u64>,
        /// The unescaped SPICE text.
        netlist: String,
    },
    /// Announces `count` annotate lines that should be admitted together.
    Batch(usize),
    /// Opens a stateful session: annotate cold, keep the result as the
    /// baseline for later `update`s.
    Open {
        /// Which pipeline to run.
        task: Task,
        /// The unescaped SPICE text.
        netlist: String,
    },
    /// Incrementally re-annotates an edited netlist against a session's
    /// baseline, then advances the baseline.
    Update {
        /// Session id returned by `open`.
        session: u64,
        /// The unescaped SPICE text of the edited netlist.
        netlist: String,
    },
    /// Discards a session's baseline state.
    Close(u64),
    /// Asks for a metrics snapshot.
    Stats,
    /// Asks for per-shard stats plus a fleet-wide aggregate. A single
    /// (unsharded) daemon answers with itself as shard `0`.
    FleetStats,
    /// Liveness probe.
    Ping,
    /// Asks the daemon to drain and exit.
    Shutdown,
}

/// Why a request line could not be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolError(pub String);

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad request: {}", self.0)
    }
}

impl std::error::Error for ProtocolError {}

fn parse_task(token: &str) -> Result<Task, ProtocolError> {
    match token {
        "ota" | "ota-bias" => Ok(Task::OtaBias),
        "rf" => Ok(Task::Rf),
        other => Err(ProtocolError(format!(
            "unknown task {other:?} (want ota|rf)"
        ))),
    }
}

/// Stable wire token for a task.
pub fn task_token(task: Task) -> &'static str {
    match task {
        Task::OtaBias => "ota",
        Task::Rf => "rf",
    }
}

impl Request {
    /// Parses one request line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Request, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest),
            None => (line, ""),
        };
        match verb {
            "annotate" => {
                let (task, rest) = rest.split_once(' ').ok_or_else(|| {
                    ProtocolError("annotate needs <task> <deadline> <netlist>".into())
                })?;
                let (deadline, payload) = rest.split_once(' ').ok_or_else(|| {
                    ProtocolError("annotate needs <task> <deadline> <netlist>".into())
                })?;
                let deadline_ms = match deadline {
                    "-" => None,
                    ms => Some(ms.parse::<u64>().map_err(|_| {
                        ProtocolError(format!("bad deadline {ms:?} (want milliseconds or '-')"))
                    })?),
                };
                Ok(Request::Annotate {
                    task: parse_task(task)?,
                    deadline_ms,
                    netlist: unescape(payload),
                })
            }
            "batch" => {
                let count: usize = rest
                    .trim()
                    .parse()
                    .map_err(|_| ProtocolError(format!("bad batch count {rest:?}")))?;
                Ok(Request::Batch(count))
            }
            "open" => {
                let (task, payload) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError("open needs <task> <netlist>".into()))?;
                Ok(Request::Open {
                    task: parse_task(task)?,
                    netlist: unescape(payload),
                })
            }
            "update" => {
                let (session, payload) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError("update needs <session> <netlist>".into()))?;
                let session = session
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad session id {session:?}")))?;
                Ok(Request::Update {
                    session,
                    netlist: unescape(payload),
                })
            }
            "close" => {
                let session = rest
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad session id {rest:?}")))?;
                Ok(Request::Close(session))
            }
            "stats" => Ok(Request::Stats),
            "fleetstats" => Ok(Request::FleetStats),
            "ping" => Ok(Request::Ping),
            "shutdown" => Ok(Request::Shutdown),
            other => Err(ProtocolError(format!("unknown verb {other:?}"))),
        }
    }

    /// Serializes to one request line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Request::Annotate {
                task,
                deadline_ms,
                netlist,
            } => {
                let deadline = deadline_ms.map_or_else(|| "-".to_string(), |ms| ms.to_string());
                format!(
                    "annotate {} {} {}",
                    task_token(*task),
                    deadline,
                    escape(netlist)
                )
            }
            Request::Batch(count) => format!("batch {count}"),
            Request::Open { task, netlist } => {
                format!("open {} {}", task_token(*task), escape(netlist))
            }
            Request::Update { session, netlist } => {
                format!("update {session} {}", escape(netlist))
            }
            Request::Close(session) => format!("close {session}"),
            Request::Stats => "stats".to_string(),
            Request::FleetStats => "fleetstats".to_string(),
            Request::Ping => "ping".to_string(),
            Request::Shutdown => "shutdown".to_string(),
        }
    }
}

/// One response line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Successful annotation.
    Ok(Annotation),
    /// Successful session open/update: the session id and its (new)
    /// annotation.
    Session {
        /// The session the annotation belongs to.
        session: u64,
        /// The annotation of the session's current netlist.
        annotation: Annotation,
    },
    /// Acknowledges `close`.
    Closed(u64),
    /// Structured per-job (or per-line) error.
    Err {
        /// Stable short code (see [`JobError::code`]).
        code: String,
        /// Human-readable detail.
        message: String,
    },
    /// Metrics snapshot in `key=value` form.
    Stats(String),
    /// Per-shard stats plus a fleet-wide aggregate (see
    /// [`crate::metrics::StatsSnapshot::aggregate`]). Each shard entry is
    /// `(shard id, key=value wire)`; `fleet` is the aggregate in the same
    /// wire form.
    Fleet {
        /// `(shard id, stats wire)` for every responding shard, id-ordered.
        shards: Vec<(u64, String)>,
        /// Aggregate of all shard snapshots in `key=value` form.
        fleet: String,
    },
    /// Answer to `ping`.
    Pong,
    /// Acknowledges `shutdown`; the connection closes after this line.
    Bye,
}

/// Field separator inside an escaped annotation payload. `\x1f` (unit
/// separator) cannot appear in SPICE text handled upstream, and record
/// fields are themselves escaped, so splitting is unambiguous.
const FIELD_SEP: char = '\x1f';
/// Separator between entries of a list field.
const ITEM_SEP: char = '\x1e';

fn encode_annotation(annotation: &Annotation) -> String {
    let labels = annotation
        .device_labels
        .iter()
        .map(|(device, label)| format!("{device}={label}"))
        .collect::<Vec<_>>()
        .join(&ITEM_SEP.to_string());
    let blocks = annotation.sub_blocks.join(&ITEM_SEP.to_string());
    let record = [
        annotation.circuit_name.as_str(),
        &labels,
        &blocks,
        &annotation.constraint_count.to_string(),
        &annotation.hierarchical_spice,
    ]
    .join(&FIELD_SEP.to_string());
    escape(&record)
}

fn decode_annotation(payload: &str) -> Result<Annotation, ProtocolError> {
    let record = unescape(payload);
    let fields: Vec<&str> = record.split(FIELD_SEP).collect();
    if fields.len() != 5 {
        return Err(ProtocolError(format!(
            "annotation payload has {} fields, want 5",
            fields.len()
        )));
    }
    let device_labels = if fields[1].is_empty() {
        Vec::new()
    } else {
        fields[1]
            .split(ITEM_SEP)
            .map(|pair| {
                pair.split_once('=')
                    .map(|(d, l)| (d.to_string(), l.to_string()))
                    .ok_or_else(|| ProtocolError(format!("bad device label {pair:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?
    };
    let sub_blocks = if fields[2].is_empty() {
        Vec::new()
    } else {
        fields[2].split(ITEM_SEP).map(str::to_string).collect()
    };
    Ok(Annotation {
        circuit_name: fields[0].to_string(),
        device_labels,
        sub_blocks,
        constraint_count: fields[3]
            .parse()
            .map_err(|_| ProtocolError(format!("bad constraint count {:?}", fields[3])))?,
        hierarchical_spice: fields[4].to_string(),
    })
}

fn encode_fleet(shards: &[(u64, String)], fleet: &str) -> String {
    let entries = shards
        .iter()
        .map(|(id, wire)| format!("{id} {wire}"))
        .collect::<Vec<_>>()
        .join(&ITEM_SEP.to_string());
    escape(&[fleet, entries.as_str()].join(&FIELD_SEP.to_string()))
}

fn decode_fleet(payload: &str) -> Result<Response, ProtocolError> {
    let record = unescape(payload);
    let (fleet, entries) = record
        .split_once(FIELD_SEP)
        .ok_or_else(|| ProtocolError("fleet payload needs <aggregate><sep><shards>".into()))?;
    let mut shards = Vec::new();
    for entry in entries.split(ITEM_SEP).filter(|e| !e.is_empty()) {
        let (id, wire) = entry
            .split_once(' ')
            .ok_or_else(|| ProtocolError(format!("bad fleet shard entry {entry:?}")))?;
        let id = id
            .parse::<u64>()
            .map_err(|_| ProtocolError(format!("bad shard id {id:?}")))?;
        shards.push((id, wire.to_string()));
    }
    Ok(Response::Fleet {
        shards,
        fleet: fleet.to_string(),
    })
}

impl Response {
    /// Builds the error response for a failed job.
    pub fn from_job_error(err: &JobError) -> Response {
        Response::Err {
            code: err.code().to_string(),
            message: err.to_string(),
        }
    }

    /// Parses one response line (without its trailing newline).
    pub fn parse(line: &str) -> Result<Response, ProtocolError> {
        let line = line.trim_end_matches(['\r', '\n']);
        let (verb, rest) = match line.split_once(' ') {
            Some((verb, rest)) => (verb, rest),
            None => (line, ""),
        };
        match verb {
            "ok" => Ok(Response::Ok(decode_annotation(rest)?)),
            "sess" => {
                let (session, payload) = rest
                    .split_once(' ')
                    .ok_or_else(|| ProtocolError("sess needs <session> <annotation>".into()))?;
                let session = session
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad session id {session:?}")))?;
                Ok(Response::Session {
                    session,
                    annotation: decode_annotation(payload)?,
                })
            }
            "closed" => {
                let session = rest
                    .trim()
                    .parse::<u64>()
                    .map_err(|_| ProtocolError(format!("bad session id {rest:?}")))?;
                Ok(Response::Closed(session))
            }
            "err" => {
                let (code, message) = rest
                    .split_once(' ')
                    .map(|(c, m)| (c.to_string(), unescape(m)))
                    .unwrap_or_else(|| (rest.to_string(), String::new()));
                Ok(Response::Err { code, message })
            }
            "stats" => Ok(Response::Stats(rest.to_string())),
            "fleet" => decode_fleet(rest),
            "pong" => Ok(Response::Pong),
            "bye" => Ok(Response::Bye),
            other => Err(ProtocolError(format!("unknown response {other:?}"))),
        }
    }

    /// Serializes to one response line (no trailing newline).
    pub fn to_line(&self) -> String {
        match self {
            Response::Ok(annotation) => format!("ok {}", encode_annotation(annotation)),
            Response::Session {
                session,
                annotation,
            } => {
                format!("sess {session} {}", encode_annotation(annotation))
            }
            Response::Closed(session) => format!("closed {session}"),
            Response::Err { code, message } => format!("err {code} {}", escape(message)),
            Response::Stats(wire) => format!("stats {wire}"),
            Response::Fleet { shards, fleet } => format!("fleet {}", encode_fleet(shards, fleet)),
            Response::Pong => "pong".to_string(),
            Response::Bye => "bye".to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_round_trips_awkward_text() {
        let text = "M1 a b c d NMOS\nR1 x y 10k\r\npath\\with\\slashes\n";
        assert_eq!(unescape(&escape(text)), text);
        assert!(!escape(text).contains('\n'));
    }

    #[test]
    fn request_round_trip() {
        let requests = [
            Request::Annotate {
                task: Task::OtaBias,
                deadline_ms: Some(250),
                netlist: "M1 a b c d NMOS\n.end\n".to_string(),
            },
            Request::Annotate {
                task: Task::Rf,
                deadline_ms: None,
                netlist: "R1 a b 1k".into(),
            },
            Request::Batch(7),
            Request::Open {
                task: Task::OtaBias,
                netlist: "M1 a b c d NMOS\n.end\n".to_string(),
            },
            Request::Update {
                session: 42,
                netlist: "M1 a b c d NMOS W=9u\n.end\n".to_string(),
            },
            Request::Close(42),
            Request::Stats,
            Request::FleetStats,
            Request::Ping,
            Request::Shutdown,
        ];
        for request in requests {
            let line = request.to_line();
            assert!(!line.contains('\n'), "single line: {line:?}");
            assert_eq!(Request::parse(&line).expect("parses"), request);
        }
    }

    #[test]
    fn response_round_trip() {
        let annotation = Annotation {
            circuit_name: "ota5".to_string(),
            device_labels: vec![
                ("M0".to_string(), "gm".to_string()),
                ("R1".to_string(), "bias".to_string()),
            ],
            sub_blocks: vec!["DiffPair".to_string(), "CM".to_string()],
            constraint_count: 3,
            hierarchical_spice: ".SUBCKT ota5 in out\nM0 a b c d NMOS\n.ENDS\n".to_string(),
        };
        let responses = [
            Response::Ok(annotation.clone()),
            Response::Session {
                session: 9,
                annotation,
            },
            Response::Closed(9),
            Response::Err {
                code: "parse".into(),
                message: "line 3: bad card\nnear M9".into(),
            },
            Response::Stats("submitted=4 completed=4".into()),
            Response::Fleet {
                shards: vec![
                    (0, "submitted=4 completed=4".into()),
                    (1, "submitted=2 completed=2".into()),
                ],
                fleet: "submitted=6 completed=6".into(),
            },
            Response::Fleet {
                shards: Vec::new(),
                fleet: "submitted=0".into(),
            },
            Response::Pong,
            Response::Bye,
        ];
        for response in responses {
            let line = response.to_line();
            assert!(!line.contains('\n'), "single line: {line:?}");
            assert_eq!(Response::parse(&line).expect("parses"), response);
        }
    }

    #[test]
    fn empty_annotation_lists_round_trip() {
        let annotation = Annotation {
            circuit_name: "empty".to_string(),
            device_labels: Vec::new(),
            sub_blocks: Vec::new(),
            constraint_count: 0,
            hierarchical_spice: String::new(),
        };
        let line = Response::Ok(annotation.clone()).to_line();
        assert_eq!(
            Response::parse(&line).expect("parses"),
            Response::Ok(annotation)
        );
    }

    #[test]
    fn malformed_lines_are_rejected() {
        assert!(Request::parse("annotate ota").is_err());
        assert!(Request::parse("annotate dac - M1 a b c d NMOS").is_err());
        assert!(Request::parse("annotate ota soon M1 a b c d NMOS").is_err());
        assert!(Request::parse("frobnicate").is_err());
        assert!(Request::parse("open ota").is_err());
        assert!(Request::parse("update nine M1 a b c d NMOS").is_err());
        assert!(Request::parse("close soon").is_err());
        assert!(Response::parse("what 1 2 3").is_err());
        assert!(Response::parse("sess x ok").is_err());
        assert!(Response::parse("fleet no-separator").is_err());
        assert!(Response::parse("fleet a=1\x1fbad-entry").is_err());
    }
}
