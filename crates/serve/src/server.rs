//! TCP front end for an [`Engine`]: the `gana serve` daemon.
//!
//! One thread accepts connections (non-blocking, so it can poll the
//! shutdown flag), one thread per connection speaks the wire protocol, and
//! one thread emits a periodic stats log line. A `shutdown` request — or
//! [`ServerHandle::shutdown`] — stops admission, drains every in-flight
//! job through [`Engine::shutdown`], and then joins all threads.
//!
//! Each connection auto-detects its protocol from the first byte: the
//! binary frame magic (`0xBF`, see [`crate::frame`]) selects length-prefixed
//! frames; anything else falls back to the legacy newline-delimited text
//! protocol, so old clients keep working unchanged. Both modes share one
//! dispatch loop — the `Request`/`Response` surface is identical.
//!
//! When the engine has a snapshot path configured, a snapshot thread
//! periodically persists the models, library, and region cache so the next
//! boot warm-starts; [`Engine::shutdown`] writes a final drain-time
//! snapshot.

use crate::engine::Engine;
use crate::frame;
use crate::job::{JobError, JobRequest, SubmitError};
use crate::protocol::{Request, Response};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub addr: String,
    /// Interval between periodic stats log lines; `None` disables them.
    pub stats_interval: Option<Duration>,
    /// Interval between periodic engine snapshots; `None` disables them.
    /// Saves are no-ops unless the engine was built with a snapshot path.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            stats_interval: Some(Duration::from_secs(30)),
            snapshot_interval: Some(Duration::from_secs(300)),
        }
    }
}

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

struct ServerShared {
    engine: Arc<Engine>,
    stop: AtomicBool,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Requests shutdown and blocks until all jobs drained and all server
    /// threads exited. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.engine.shutdown();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }

    /// Blocks until the server stops (e.g. via a `shutdown` request).
    pub fn join(&self) {
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the address and spawns the accept, connection, and stats threads.
pub fn serve(engine: Arc<Engine>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        engine,
        stop: AtomicBool::new(false),
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    if let Some(interval) = config.stats_interval {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-stats".to_string())
                .spawn(move || stats_loop(&shared, interval))?,
        );
    }
    if let Some(interval) = config.snapshot_interval {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-snapshot".to_string())
                .spawn(move || snapshot_loop(&shared, interval))?,
        );
    }

    Ok(ServerHandle {
        shared,
        local_addr,
        threads: Mutex::new(threads),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("gana-serve-conn-{peer}"))
                    .spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            if err.kind() != ErrorKind::ConnectionReset {
                                eprintln!("[gana-serve] connection {peer}: {err}");
                            }
                        }
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(err) => eprintln!("[gana-serve] spawn failed: {err}"),
                }
                connections.retain(|c| !c.is_finished());
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(err) => {
                eprintln!("[gana-serve] accept: {err}");
                std::thread::sleep(POLL);
            }
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn stats_loop(shared: &ServerShared, interval: Duration) {
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        elapsed += POLL;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            eprintln!("[gana-serve] {}", shared.engine.stats());
        }
    }
}

fn snapshot_loop(shared: &ServerShared, interval: Duration) {
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        elapsed += POLL;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            match shared.engine.save_snapshot() {
                Ok(Some(bytes)) => eprintln!("[gana-serve] snapshot saved ({bytes} B)"),
                // No snapshot path configured; nothing to persist.
                Ok(None) => return,
                Err(err) => eprintln!("[gana-serve] snapshot failed: {err}"),
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    // Sessions are connection-scoped: whatever this connection opened and
    // did not close is released when the stream drops (cleanly or not), so
    // a client that disconnects mid-session cannot leak baselines in the
    // engine's session store.
    let mut opened: Vec<u64> = Vec::new();
    let result = connection_loop(stream, shared, &mut opened);
    for session in opened {
        shared.engine.close_session(session);
    }
    result
}

fn connection_loop(
    stream: TcpStream,
    shared: &ServerShared,
    opened: &mut Vec<u64>,
) -> io::Result<()> {
    // A read timeout lets the thread notice shutdown even on idle
    // connections.
    stream.set_read_timeout(Some(POLL))?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Protocol auto-detect: peek (without consuming) the first byte. The
    // binary frame magic cannot start a text verb, so one byte decides.
    let first = loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(()), // closed before the first request
            Ok(buf) => break buf[0],
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return Ok(());
                }
            }
            Err(err) => return Err(err),
        }
    };
    if first == frame::FRAME_MAGIC {
        dispatch_loop(&mut BinaryTransport { reader, writer }, shared, opened)
    } else {
        dispatch_loop(
            &mut TextTransport {
                reader,
                writer,
                line: String::new(),
            },
            shared,
            opened,
        )
    }
}

/// What a transport's request read produced.
enum ReadRequest {
    /// A well-formed request.
    Request(Request),
    /// The peer sent something unparseable: report `message`; when `fatal`
    /// (binary framing lost sync) the connection closes after the report.
    Bad { message: String, fatal: bool },
    /// Clean close at a message boundary.
    Closed,
    /// The server is shutting down.
    Stopping,
    /// Socket-level failure.
    Error(io::Error),
}

/// One protocol mode: how requests come off the socket and how responses go
/// back. The dispatch loop is shared; only the framing differs.
trait Transport {
    fn read_request(&mut self, shared: &ServerShared) -> ReadRequest;
    fn write_response(&mut self, response: &Response) -> io::Result<()>;
}

/// Legacy newline-delimited text framing.
struct TextTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Transport for TextTransport {
    fn read_request(&mut self, shared: &ServerShared) -> ReadRequest {
        self.line.clear();
        loop {
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return ReadRequest::Closed,
                Ok(_) => {
                    // A timeout can split a line; keep reading to newline.
                    if self.line.ends_with('\n') {
                        return match Request::parse(&self.line) {
                            Ok(request) => ReadRequest::Request(request),
                            Err(err) => ReadRequest::Bad {
                                message: err.0,
                                fatal: false,
                            },
                        };
                    }
                }
                Err(err)
                    if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return ReadRequest::Stopping;
                    }
                }
                Err(err) => return ReadRequest::Error(err),
            }
        }
    }

    fn write_response(&mut self, response: &Response) -> io::Result<()> {
        let mut line = response.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }
}

/// Length-prefixed, CRC-checked binary framing (see [`crate::frame`]).
struct BinaryTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

enum FillOutcome {
    Done,
    Closed,
    Stopping,
    Error(io::Error),
}

impl BinaryTransport {
    /// Fills `buf` completely, waking every [`POLL`] to check the shutdown
    /// flag. `Closed` is only clean when nothing was read yet.
    fn read_exact_polling(&mut self, mut buf: &mut [u8], shared: &ServerShared) -> FillOutcome {
        let whole = buf.len();
        while !buf.is_empty() {
            match self.reader.read(buf) {
                Ok(0) => {
                    return if buf.len() == whole {
                        FillOutcome::Closed
                    } else {
                        FillOutcome::Error(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => buf = &mut buf[n..],
                Err(err)
                    if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
                {
                    if shared.stop.load(Ordering::SeqCst) {
                        return FillOutcome::Stopping;
                    }
                }
                Err(err) => return FillOutcome::Error(err),
            }
        }
        FillOutcome::Done
    }
}

impl Transport for BinaryTransport {
    fn read_request(&mut self, shared: &ServerShared) -> ReadRequest {
        let mut header = [0u8; frame::HEADER_BYTES];
        match self.read_exact_polling(&mut header, shared) {
            FillOutcome::Done => {}
            FillOutcome::Closed => return ReadRequest::Closed,
            FillOutcome::Stopping => return ReadRequest::Stopping,
            FillOutcome::Error(err) => return ReadRequest::Error(err),
        }
        let len = match frame::check_header(&header) {
            Ok(len) => len,
            Err(err) => {
                return ReadRequest::Bad {
                    message: err.to_string(),
                    fatal: true,
                }
            }
        };
        let mut body = vec![0u8; len];
        let mut crc = [0u8; 4];
        for buf in [body.as_mut_slice(), crc.as_mut_slice()] {
            match self.read_exact_polling(buf, shared) {
                FillOutcome::Done => {}
                FillOutcome::Closed | FillOutcome::Stopping => return ReadRequest::Stopping,
                FillOutcome::Error(err) => return ReadRequest::Error(err),
            }
        }
        if let Err(err) = frame::check_crc(&body, &crc) {
            return ReadRequest::Bad {
                message: err.to_string(),
                fatal: true,
            };
        }
        match frame::decode_request(&body) {
            Ok(request) => ReadRequest::Request(request),
            // The frame itself was intact, so the stream is still in sync:
            // only this request fails.
            Err(err) => ReadRequest::Bad {
                message: err.to_string(),
                fatal: false,
            },
        }
    }

    fn write_response(&mut self, response: &Response) -> io::Result<()> {
        self.writer.write_all(&frame::encode_response(response))
    }
}

fn dispatch_loop<T: Transport>(
    transport: &mut T,
    shared: &ServerShared,
    opened: &mut Vec<u64>,
) -> io::Result<()> {
    loop {
        let request = match transport.read_request(shared) {
            ReadRequest::Request(request) => request,
            ReadRequest::Bad { message, fatal } => {
                transport.write_response(&Response::Err {
                    code: "protocol".into(),
                    message,
                })?;
                if fatal {
                    return Ok(());
                }
                continue;
            }
            ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
            ReadRequest::Error(err) => return Err(err),
        };
        match request {
            Request::Ping => transport.write_response(&Response::Pong)?,
            Request::Stats => {
                let wire = shared.engine.stats().to_wire();
                transport.write_response(&Response::Stats(wire))?;
            }
            Request::Shutdown => {
                transport.write_response(&Response::Bye)?;
                shared.stop.store(true, Ordering::SeqCst);
                shared.engine.shutdown();
                return Ok(());
            }
            Request::Annotate {
                task,
                deadline_ms,
                netlist,
            } => {
                let response = annotate_one(shared, task, deadline_ms, netlist);
                transport.write_response(&response)?;
            }
            Request::Open { task, netlist } => {
                let response = match shared.engine.open_session(JobRequest::new(netlist, task)) {
                    Ok((session, handle)) => match handle.wait() {
                        Ok(annotation) => {
                            opened.push(session);
                            Response::Session {
                                session,
                                annotation: (*annotation).clone(),
                            }
                        }
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(SubmitError::QueueFull) => Response::Err {
                        code: "busy".into(),
                        message: SubmitError::QueueFull.to_string(),
                    },
                    Err(SubmitError::ShuttingDown) => Response::from_job_error(&JobError::Shutdown),
                };
                transport.write_response(&response)?;
            }
            Request::Update { session, netlist } => {
                let response = match shared.engine.update_session(session, netlist) {
                    Ok(handle) => match handle.wait() {
                        Ok(annotation) => Response::Session {
                            session,
                            annotation: (*annotation).clone(),
                        },
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(SubmitError::QueueFull) => Response::Err {
                        code: "busy".into(),
                        message: SubmitError::QueueFull.to_string(),
                    },
                    Err(SubmitError::ShuttingDown) => Response::from_job_error(&JobError::Shutdown),
                };
                transport.write_response(&response)?;
            }
            Request::Close(session) => {
                let response = if shared.engine.close_session(session) {
                    opened.retain(|&s| s != session);
                    Response::Closed(session)
                } else {
                    Response::from_job_error(&JobError::UnknownSession(session))
                };
                transport.write_response(&response)?;
            }
            Request::Batch(count) => {
                // Admit the whole batch before waiting on any reply, so the
                // worker pool sees all jobs at once.
                let mut handles = Vec::with_capacity(count);
                for _ in 0..count {
                    match transport.read_request(shared) {
                        ReadRequest::Request(Request::Annotate {
                            task,
                            deadline_ms,
                            netlist,
                        }) => {
                            handles.push(submit_one(shared, task, deadline_ms, netlist));
                        }
                        ReadRequest::Request(other) => handles.push(Err(Response::Err {
                            code: "protocol".into(),
                            message: format!("batch expects annotate lines, got {other:?}"),
                        })),
                        ReadRequest::Bad { message, fatal } => {
                            if fatal {
                                // Framing lost sync mid-batch: report and
                                // close; already-admitted jobs still run but
                                // their replies have nowhere to go.
                                transport.write_response(&Response::Err {
                                    code: "protocol".into(),
                                    message,
                                })?;
                                return Ok(());
                            }
                            handles.push(Err(Response::Err {
                                code: "protocol".into(),
                                message,
                            }));
                        }
                        ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
                        ReadRequest::Error(err) => return Err(err),
                    }
                }
                for handle in handles {
                    let response = match handle {
                        Ok(handle) => match handle.wait() {
                            Ok(annotation) => Response::Ok((*annotation).clone()),
                            Err(err) => Response::from_job_error(&err),
                        },
                        Err(response) => response,
                    };
                    transport.write_response(&response)?;
                }
            }
        }
    }
}

fn submit_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Result<crate::job::JobHandle, Response> {
    let mut request = JobRequest::new(netlist, task);
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    shared.engine.submit(request).map_err(|err| match err {
        SubmitError::QueueFull => Response::Err {
            code: "busy".into(),
            message: err.to_string(),
        },
        SubmitError::ShuttingDown => Response::from_job_error(&JobError::Shutdown),
    })
}

fn annotate_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Response {
    match submit_one(shared, task, deadline_ms, netlist) {
        Ok(handle) => match handle.wait() {
            Ok(annotation) => Response::Ok((*annotation).clone()),
            Err(err) => Response::from_job_error(&err),
        },
        Err(response) => response,
    }
}
