//! TCP front end for an [`Engine`]: the `gana serve` daemon.
//!
//! One thread accepts connections (non-blocking, so it can poll the
//! shutdown flag), one thread per connection speaks the line protocol, and
//! one thread emits a periodic stats log line. A `shutdown` request — or
//! [`ServerHandle::shutdown`] — stops admission, drains every in-flight
//! job through [`Engine::shutdown`], and then joins all threads.

use crate::engine::Engine;
use crate::job::{JobError, JobRequest, SubmitError};
use crate::protocol::{Request, Response};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub addr: String,
    /// Interval between periodic stats log lines; `None` disables them.
    pub stats_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            stats_interval: Some(Duration::from_secs(30)),
        }
    }
}

/// How often blocked threads re-check the shutdown flag.
const POLL: Duration = Duration::from_millis(50);

struct ServerShared {
    engine: Arc<Engine>,
    stop: AtomicBool,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Requests shutdown and blocks until all jobs drained and all server
    /// threads exited. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.engine.shutdown();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }

    /// Blocks until the server stops (e.g. via a `shutdown` request).
    pub fn join(&self) {
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the address and spawns the accept, connection, and stats threads.
pub fn serve(engine: Arc<Engine>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        engine,
        stop: AtomicBool::new(false),
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    if let Some(interval) = config.stats_interval {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-stats".to_string())
                .spawn(move || stats_loop(&shared, interval))?,
        );
    }

    Ok(ServerHandle {
        shared,
        local_addr,
        threads: Mutex::new(threads),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("gana-serve-conn-{peer}"))
                    .spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            if err.kind() != ErrorKind::ConnectionReset {
                                eprintln!("[gana-serve] connection {peer}: {err}");
                            }
                        }
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(err) => eprintln!("[gana-serve] spawn failed: {err}"),
                }
                connections.retain(|c| !c.is_finished());
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(err) => {
                eprintln!("[gana-serve] accept: {err}");
                std::thread::sleep(POLL);
            }
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn stats_loop(shared: &ServerShared, interval: Duration) {
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        elapsed += POLL;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            eprintln!("[gana-serve] {}", shared.engine.stats());
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    // Sessions are connection-scoped: whatever this connection opened and
    // did not close is released when the stream drops (cleanly or not), so
    // a client that disconnects mid-session cannot leak baselines in the
    // engine's session store.
    let mut opened: Vec<u64> = Vec::new();
    let result = connection_loop(stream, shared, &mut opened);
    for session in opened {
        shared.engine.close_session(session);
    }
    result
}

fn connection_loop(
    stream: TcpStream,
    shared: &ServerShared,
    opened: &mut Vec<u64>,
) -> io::Result<()> {
    // A read timeout lets the thread notice shutdown even on idle
    // connections.
    stream.set_read_timeout(Some(POLL))?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();

    loop {
        line.clear();
        match read_line_polling(&mut reader, &mut line, shared) {
            ReadOutcome::Line => {}
            ReadOutcome::Closed => return Ok(()),
            ReadOutcome::Stopping => return Ok(()),
            ReadOutcome::Error(err) => return Err(err),
        }
        let request = match Request::parse(&line) {
            Ok(request) => request,
            Err(err) => {
                write_response(
                    &mut writer,
                    &Response::Err {
                        code: "protocol".into(),
                        message: err.0,
                    },
                )?;
                continue;
            }
        };
        match request {
            Request::Ping => write_response(&mut writer, &Response::Pong)?,
            Request::Stats => {
                let wire = shared.engine.stats().to_wire();
                write_response(&mut writer, &Response::Stats(wire))?;
            }
            Request::Shutdown => {
                write_response(&mut writer, &Response::Bye)?;
                shared.stop.store(true, Ordering::SeqCst);
                shared.engine.shutdown();
                return Ok(());
            }
            Request::Annotate {
                task,
                deadline_ms,
                netlist,
            } => {
                let response = annotate_one(shared, task, deadline_ms, netlist);
                write_response(&mut writer, &response)?;
            }
            Request::Open { task, netlist } => {
                let response = match shared.engine.open_session(JobRequest::new(netlist, task)) {
                    Ok((session, handle)) => match handle.wait() {
                        Ok(annotation) => {
                            opened.push(session);
                            Response::Session {
                                session,
                                annotation: (*annotation).clone(),
                            }
                        }
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(SubmitError::QueueFull) => Response::Err {
                        code: "busy".into(),
                        message: SubmitError::QueueFull.to_string(),
                    },
                    Err(SubmitError::ShuttingDown) => Response::from_job_error(&JobError::Shutdown),
                };
                write_response(&mut writer, &response)?;
            }
            Request::Update { session, netlist } => {
                let response = match shared.engine.update_session(session, netlist) {
                    Ok(handle) => match handle.wait() {
                        Ok(annotation) => Response::Session {
                            session,
                            annotation: (*annotation).clone(),
                        },
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(SubmitError::QueueFull) => Response::Err {
                        code: "busy".into(),
                        message: SubmitError::QueueFull.to_string(),
                    },
                    Err(SubmitError::ShuttingDown) => Response::from_job_error(&JobError::Shutdown),
                };
                write_response(&mut writer, &response)?;
            }
            Request::Close(session) => {
                let response = if shared.engine.close_session(session) {
                    opened.retain(|&s| s != session);
                    Response::Closed(session)
                } else {
                    Response::from_job_error(&JobError::UnknownSession(session))
                };
                write_response(&mut writer, &response)?;
            }
            Request::Batch(count) => {
                // Admit the whole batch before waiting on any reply, so the
                // worker pool sees all jobs at once.
                let mut handles = Vec::with_capacity(count);
                for _ in 0..count {
                    line.clear();
                    match read_line_polling(&mut reader, &mut line, shared) {
                        ReadOutcome::Line => {}
                        ReadOutcome::Closed | ReadOutcome::Stopping => return Ok(()),
                        ReadOutcome::Error(err) => return Err(err),
                    }
                    match Request::parse(&line) {
                        Ok(Request::Annotate {
                            task,
                            deadline_ms,
                            netlist,
                        }) => {
                            handles.push(submit_one(shared, task, deadline_ms, netlist));
                        }
                        Ok(other) => handles.push(Err(Response::Err {
                            code: "protocol".into(),
                            message: format!("batch expects annotate lines, got {other:?}"),
                        })),
                        Err(err) => handles.push(Err(Response::Err {
                            code: "protocol".into(),
                            message: err.0,
                        })),
                    }
                }
                for handle in handles {
                    let response = match handle {
                        Ok(handle) => match handle.wait() {
                            Ok(annotation) => Response::Ok((*annotation).clone()),
                            Err(err) => Response::from_job_error(&err),
                        },
                        Err(response) => response,
                    };
                    write_response(&mut writer, &response)?;
                }
            }
        }
    }
}

enum ReadOutcome {
    Line,
    Closed,
    Stopping,
    Error(io::Error),
}

/// Reads one line, waking every [`POLL`] to check the shutdown flag.
fn read_line_polling(
    reader: &mut BufReader<TcpStream>,
    line: &mut String,
    shared: &ServerShared,
) -> ReadOutcome {
    loop {
        match reader.read_line(line) {
            Ok(0) => return ReadOutcome::Closed,
            Ok(_) => {
                // A timeout can split a line; keep reading until newline.
                if line.ends_with('\n') {
                    return ReadOutcome::Line;
                }
            }
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if shared.stop.load(Ordering::SeqCst) {
                    return ReadOutcome::Stopping;
                }
            }
            Err(err) => return ReadOutcome::Error(err),
        }
    }
}

fn submit_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Result<crate::job::JobHandle, Response> {
    let mut request = JobRequest::new(netlist, task);
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    shared.engine.submit(request).map_err(|err| match err {
        SubmitError::QueueFull => Response::Err {
            code: "busy".into(),
            message: err.to_string(),
        },
        SubmitError::ShuttingDown => Response::from_job_error(&JobError::Shutdown),
    })
}

fn annotate_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Response {
    match submit_one(shared, task, deadline_ms, netlist) {
        Ok(handle) => match handle.wait() {
            Ok(annotation) => Response::Ok((*annotation).clone()),
            Err(err) => Response::from_job_error(&err),
        },
        Err(response) => response,
    }
}

fn write_response(writer: &mut TcpStream, response: &Response) -> io::Result<()> {
    let mut line = response.to_line();
    line.push('\n');
    writer.write_all(line.as_bytes())
}
