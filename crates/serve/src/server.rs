//! TCP front end for an [`Engine`]: the `gana serve` daemon.
//!
//! One thread accepts connections (non-blocking, so it can poll the
//! shutdown flag), one thread per connection speaks the wire protocol, and
//! one thread emits a periodic stats log line. A `shutdown` request — or
//! [`ServerHandle::shutdown`] — stops admission, drains every in-flight
//! job through [`Engine::shutdown`], and then joins all threads.
//!
//! Each connection auto-detects its protocol from the first byte: the
//! binary frame magic (`0xBF`, see [`crate::frame`]) selects length-prefixed
//! frames; anything else falls back to the legacy newline-delimited text
//! protocol, so old clients keep working unchanged. Both modes share one
//! dispatch loop — the `Request`/`Response` surface is identical.
//!
//! When the engine has a snapshot path configured, a snapshot thread
//! periodically persists the models, library, and region cache so the next
//! boot warm-starts; [`Engine::shutdown`] writes a final drain-time
//! snapshot.

use crate::engine::Engine;
use crate::job::{JobError, JobRequest, SubmitError};
use crate::protocol::{Request, Response};
use crate::transport::{accept_transport, ReadRequest, Transport, POLL};
use parking_lot::Mutex;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind, e.g. `127.0.0.1:7878` (port `0` picks a free one).
    pub addr: String,
    /// Interval between periodic stats log lines; `None` disables them.
    pub stats_interval: Option<Duration>,
    /// Interval between periodic engine snapshots; `None` disables them.
    /// Saves are no-ops unless the engine was built with a snapshot path.
    pub snapshot_interval: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            addr: "127.0.0.1:7878".to_string(),
            stats_interval: Some(Duration::from_secs(30)),
            snapshot_interval: Some(Duration::from_secs(300)),
        }
    }
}

struct ServerShared {
    engine: Arc<Engine>,
    stop: AtomicBool,
}

/// Handle to a running server; dropping it shuts the server down.
pub struct ServerHandle {
    shared: Arc<ServerShared>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl ServerHandle {
    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The engine behind the server.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.shared.engine
    }

    /// Requests shutdown and blocks until all jobs drained and all server
    /// threads exited. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.engine.shutdown();
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }

    /// True once shutdown has been requested (by a `shutdown` wire request,
    /// a signal-driven [`ServerHandle::shutdown`], or a drop). Supervisors
    /// poll this to tell a draining server from a hung one.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Blocks until the server stops (e.g. via a `shutdown` request).
    pub fn join(&self) {
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the address and spawns the accept, connection, and stats threads.
pub fn serve(engine: Arc<Engine>, config: ServerConfig) -> io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(ServerShared {
        engine,
        stop: AtomicBool::new(false),
    });

    let mut threads = Vec::new();
    {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))?,
        );
    }
    if let Some(interval) = config.stats_interval {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-stats".to_string())
                .spawn(move || stats_loop(&shared, interval))?,
        );
    }
    if let Some(interval) = config.snapshot_interval {
        let shared = Arc::clone(&shared);
        threads.push(
            std::thread::Builder::new()
                .name("gana-serve-snapshot".to_string())
                .spawn(move || snapshot_loop(&shared, interval))?,
        );
    }

    Ok(ServerHandle {
        shared,
        local_addr,
        threads: Mutex::new(threads),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<ServerShared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("gana-serve-conn-{peer}"))
                    .spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            if err.kind() != ErrorKind::ConnectionReset {
                                eprintln!("[gana-serve] connection {peer}: {err}");
                            }
                        }
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(err) => eprintln!("[gana-serve] spawn failed: {err}"),
                }
                connections.retain(|c| !c.is_finished());
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(err) => {
                eprintln!("[gana-serve] accept: {err}");
                std::thread::sleep(POLL);
            }
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

fn stats_loop(shared: &ServerShared, interval: Duration) {
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        elapsed += POLL;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            eprintln!("[gana-serve] {}", shared.engine.stats());
        }
    }
}

fn snapshot_loop(shared: &ServerShared, interval: Duration) {
    let mut elapsed = Duration::ZERO;
    while !shared.stop.load(Ordering::SeqCst) {
        std::thread::sleep(POLL);
        elapsed += POLL;
        if elapsed >= interval {
            elapsed = Duration::ZERO;
            match shared.engine.save_snapshot() {
                Ok(Some(bytes)) => eprintln!("[gana-serve] snapshot saved ({bytes} B)"),
                // No snapshot path configured; nothing to persist.
                Ok(None) => return,
                Err(err) => eprintln!("[gana-serve] snapshot failed: {err}"),
            }
        }
    }
}

fn handle_connection(stream: TcpStream, shared: &ServerShared) -> io::Result<()> {
    // Sessions are connection-scoped: whatever this connection opened and
    // did not close is released when the stream drops (cleanly or not), so
    // a client that disconnects mid-session cannot leak baselines in the
    // engine's session store.
    let mut opened: Vec<u64> = Vec::new();
    let result = connection_loop(stream, shared, &mut opened);
    for session in opened {
        shared.engine.close_session(session);
    }
    result
}

fn connection_loop(
    stream: TcpStream,
    shared: &ServerShared,
    opened: &mut Vec<u64>,
) -> io::Result<()> {
    // Framing (text vs binary, auto-detected from the first byte) lives in
    // [`crate::transport`], shared with the `gana-shard` router.
    match accept_transport(stream, &shared.stop)? {
        Some(mut transport) => dispatch_loop(transport.as_mut(), shared, opened),
        None => Ok(()),
    }
}

fn dispatch_loop(
    transport: &mut dyn Transport,
    shared: &ServerShared,
    opened: &mut Vec<u64>,
) -> io::Result<()> {
    loop {
        let request = match transport.read_request(&shared.stop) {
            ReadRequest::Request(request) => request,
            ReadRequest::Bad { message, fatal } => {
                transport.write_response(&Response::Err {
                    code: "protocol".into(),
                    message,
                })?;
                if fatal {
                    return Ok(());
                }
                continue;
            }
            ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
            ReadRequest::Error(err) => return Err(err),
        };
        match request {
            Request::Ping => transport.write_response(&Response::Pong)?,
            Request::Stats => {
                let wire = shared.engine.stats().to_wire();
                transport.write_response(&Response::Stats(wire))?;
            }
            Request::FleetStats => {
                // An unsharded daemon is a fleet of one: itself as shard 0.
                let wire = shared.engine.stats().to_wire();
                transport.write_response(&Response::Fleet {
                    shards: vec![(0, wire.clone())],
                    fleet: wire,
                })?;
            }
            Request::Shutdown => {
                transport.write_response(&Response::Bye)?;
                shared.stop.store(true, Ordering::SeqCst);
                shared.engine.shutdown();
                return Ok(());
            }
            Request::Annotate {
                task,
                deadline_ms,
                netlist,
            } => {
                let response = annotate_one(shared, task, deadline_ms, netlist);
                transport.write_response(&response)?;
            }
            Request::Open { task, netlist } => {
                let response = match shared.engine.open_session(JobRequest::new(netlist, task)) {
                    Ok((session, handle)) => match handle.wait() {
                        Ok(annotation) => {
                            opened.push(session);
                            Response::Session {
                                session,
                                annotation: (*annotation).clone(),
                            }
                        }
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(err) => submit_error_response(err),
                };
                transport.write_response(&response)?;
            }
            Request::Update { session, netlist } => {
                let response = match shared.engine.update_session(session, netlist) {
                    Ok(handle) => match handle.wait() {
                        Ok(annotation) => Response::Session {
                            session,
                            annotation: (*annotation).clone(),
                        },
                        Err(err) => Response::from_job_error(&err),
                    },
                    Err(err) => submit_error_response(err),
                };
                transport.write_response(&response)?;
            }
            Request::Close(session) => {
                let response = if shared.engine.close_session(session) {
                    opened.retain(|&s| s != session);
                    Response::Closed(session)
                } else {
                    Response::from_job_error(&JobError::UnknownSession(session))
                };
                transport.write_response(&response)?;
            }
            Request::Batch(count) => {
                // Admit the whole batch before waiting on any reply, so the
                // worker pool sees all jobs at once.
                let mut handles = Vec::with_capacity(count);
                for _ in 0..count {
                    match transport.read_request(&shared.stop) {
                        ReadRequest::Request(Request::Annotate {
                            task,
                            deadline_ms,
                            netlist,
                        }) => {
                            handles.push(submit_one(shared, task, deadline_ms, netlist));
                        }
                        ReadRequest::Request(other) => handles.push(Err(Response::Err {
                            code: "protocol".into(),
                            message: format!("batch expects annotate lines, got {other:?}"),
                        })),
                        ReadRequest::Bad { message, fatal } => {
                            if fatal {
                                // Framing lost sync mid-batch: report and
                                // close; already-admitted jobs still run but
                                // their replies have nowhere to go.
                                transport.write_response(&Response::Err {
                                    code: "protocol".into(),
                                    message,
                                })?;
                                return Ok(());
                            }
                            handles.push(Err(Response::Err {
                                code: "protocol".into(),
                                message,
                            }));
                        }
                        ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
                        ReadRequest::Error(err) => return Err(err),
                    }
                }
                for handle in handles {
                    let response = match handle {
                        Ok(handle) => match handle.wait() {
                            Ok(annotation) => Response::Ok((*annotation).clone()),
                            Err(err) => Response::from_job_error(&err),
                        },
                        Err(response) => response,
                    };
                    transport.write_response(&response)?;
                }
            }
        }
    }
}

fn submit_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Result<crate::job::JobHandle, Response> {
    let mut request = JobRequest::new(netlist, task);
    if let Some(ms) = deadline_ms {
        request = request.with_deadline(Duration::from_millis(ms));
    }
    shared.engine.submit(request).map_err(submit_error_response)
}

/// Maps an admission failure to its wire response: `QueueFull` stays the
/// plain `busy` backpressure signal, while a deadline-aware shed becomes a
/// structured `overloaded` error whose message carries the machine-readable
/// `retry_after_ms=N` hint ([`crate::client::ClientError::retry_after_hint`]
/// parses it back out).
fn submit_error_response(err: SubmitError) -> Response {
    match err {
        SubmitError::QueueFull => Response::Err {
            code: "busy".into(),
            message: err.to_string(),
        },
        SubmitError::Overloaded { .. } => Response::Err {
            code: "overloaded".into(),
            message: err.to_string(),
        },
        SubmitError::ShuttingDown => Response::from_job_error(&JobError::Shutdown),
    }
}

fn annotate_one(
    shared: &ServerShared,
    task: gana_core::Task,
    deadline_ms: Option<u64>,
    netlist: String,
) -> Response {
    match submit_one(shared, task, deadline_ms, netlist) {
        Ok(handle) => match handle.wait() {
            Ok(annotation) => Response::Ok((*annotation).clone()),
            Err(err) => Response::from_job_error(&err),
        },
        Err(response) => response,
    }
}
