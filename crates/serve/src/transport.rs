//! Connection framing shared by the daemon and by front ends that proxy
//! the protocol (the `gana-shard` router).
//!
//! A [`Transport`] turns one accepted [`TcpStream`] into a stream of parsed
//! [`Request`]s and a sink of [`Response`]s. Two implementations carry the
//! same surface: [`TextTransport`] (newline-delimited, see
//! [`crate::protocol`]) and [`BinaryTransport`] (length-prefixed CRC-checked
//! frames, see [`crate::frame`]). [`accept_transport`] auto-detects the mode
//! from the first byte of the connection — the frame magic `0xBF` can never
//! start a text verb — so one listening port serves both kinds of client.
//!
//! All reads poll a caller-owned stop flag every [`POLL`], so an idle or
//! half-dead connection never keeps a draining server alive.

use crate::frame;
use crate::protocol::{Request, Response};
use std::io::{self, BufRead, BufReader, ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// How often blocked reads re-check the stop flag.
pub const POLL: Duration = Duration::from_millis(50);

/// What a transport's request read produced.
pub enum ReadRequest {
    /// A well-formed request.
    Request(Request),
    /// The peer sent something unparseable: report `message`; when `fatal`
    /// (binary framing lost sync) the connection closes after the report.
    Bad {
        /// Human-readable description of what failed to parse.
        message: String,
        /// True when the byte stream has lost sync and must close.
        fatal: bool,
    },
    /// Clean close at a message boundary.
    Closed,
    /// The stop flag was raised while waiting.
    Stopping,
    /// Socket-level failure.
    Error(io::Error),
}

/// One protocol mode: how requests come off the socket and how responses go
/// back. Dispatch logic is the caller's; only the framing differs.
pub trait Transport {
    /// Blocks for the next request, polling `stop` every [`POLL`].
    fn read_request(&mut self, stop: &AtomicBool) -> ReadRequest;
    /// Writes one response in this transport's framing.
    fn write_response(&mut self, response: &Response) -> io::Result<()>;
}

/// Accepts a connection and returns the transport matching its first byte:
/// binary framing when it is the frame magic, text otherwise. Returns
/// `None` when the peer closes before sending anything or the stop flag is
/// raised while waiting. Installs the [`POLL`] read timeout as a side
/// effect.
pub fn accept_transport(
    stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<Option<Box<dyn Transport + Send>>> {
    stream.set_read_timeout(Some(POLL))?;
    let writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    // Protocol auto-detect: peek (without consuming) the first byte. The
    // binary frame magic cannot start a text verb, so one byte decides.
    let first = loop {
        match reader.fill_buf() {
            Ok([]) => return Ok(None), // closed before the first request
            Ok(buf) => break buf[0],
            Err(err)
                if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return Ok(None);
                }
            }
            Err(err) => return Err(err),
        }
    };
    if first == frame::FRAME_MAGIC {
        Ok(Some(Box::new(BinaryTransport { reader, writer })))
    } else {
        Ok(Some(Box::new(TextTransport {
            reader,
            writer,
            line: String::new(),
        })))
    }
}

/// Legacy newline-delimited text framing.
pub struct TextTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
    line: String,
}

impl Transport for TextTransport {
    fn read_request(&mut self, stop: &AtomicBool) -> ReadRequest {
        self.line.clear();
        loop {
            match self.reader.read_line(&mut self.line) {
                Ok(0) => return ReadRequest::Closed,
                Ok(_) => {
                    // A timeout can split a line; keep reading to newline.
                    if self.line.ends_with('\n') {
                        return match Request::parse(&self.line) {
                            Ok(request) => ReadRequest::Request(request),
                            Err(err) => ReadRequest::Bad {
                                message: err.0,
                                fatal: false,
                            },
                        };
                    }
                }
                Err(err)
                    if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return ReadRequest::Stopping;
                    }
                }
                Err(err) => return ReadRequest::Error(err),
            }
        }
    }

    fn write_response(&mut self, response: &Response) -> io::Result<()> {
        let mut line = response.to_line();
        line.push('\n');
        self.writer.write_all(line.as_bytes())
    }
}

/// Length-prefixed, CRC-checked binary framing (see [`crate::frame`]).
pub struct BinaryTransport {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

enum FillOutcome {
    Done,
    Closed,
    Stopping,
    Error(io::Error),
}

impl BinaryTransport {
    /// Fills `buf` completely, waking every [`POLL`] to check the stop
    /// flag. `Closed` is only clean when nothing was read yet.
    fn read_exact_polling(&mut self, mut buf: &mut [u8], stop: &AtomicBool) -> FillOutcome {
        let whole = buf.len();
        while !buf.is_empty() {
            match self.reader.read(buf) {
                Ok(0) => {
                    return if buf.len() == whole {
                        FillOutcome::Closed
                    } else {
                        FillOutcome::Error(io::Error::new(
                            ErrorKind::UnexpectedEof,
                            "connection closed mid-frame",
                        ))
                    };
                }
                Ok(n) => buf = &mut buf[n..],
                Err(err)
                    if err.kind() == ErrorKind::WouldBlock || err.kind() == ErrorKind::TimedOut =>
                {
                    if stop.load(Ordering::SeqCst) {
                        return FillOutcome::Stopping;
                    }
                }
                Err(err) => return FillOutcome::Error(err),
            }
        }
        FillOutcome::Done
    }
}

impl Transport for BinaryTransport {
    fn read_request(&mut self, stop: &AtomicBool) -> ReadRequest {
        let mut header = [0u8; frame::HEADER_BYTES];
        match self.read_exact_polling(&mut header, stop) {
            FillOutcome::Done => {}
            FillOutcome::Closed => return ReadRequest::Closed,
            FillOutcome::Stopping => return ReadRequest::Stopping,
            FillOutcome::Error(err) => return ReadRequest::Error(err),
        }
        let len = match frame::check_header(&header) {
            Ok(len) => len,
            Err(err) => {
                return ReadRequest::Bad {
                    message: err.to_string(),
                    fatal: true,
                }
            }
        };
        let mut body = vec![0u8; len];
        let mut crc = [0u8; 4];
        for buf in [body.as_mut_slice(), crc.as_mut_slice()] {
            match self.read_exact_polling(buf, stop) {
                FillOutcome::Done => {}
                FillOutcome::Closed | FillOutcome::Stopping => return ReadRequest::Stopping,
                FillOutcome::Error(err) => return ReadRequest::Error(err),
            }
        }
        if let Err(err) = frame::check_crc(&body, &crc) {
            return ReadRequest::Bad {
                message: err.to_string(),
                fatal: true,
            };
        }
        match frame::decode_request(&body) {
            Ok(request) => ReadRequest::Request(request),
            // The frame itself was intact, so the stream is still in sync:
            // only this request fails.
            Err(err) => ReadRequest::Bad {
                message: err.to_string(),
                fatal: false,
            },
        }
    }

    fn write_response(&mut self, response: &Response) -> io::Result<()> {
        self.writer.write_all(&frame::encode_response(response))
    }
}
