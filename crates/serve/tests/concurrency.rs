//! Engine-level concurrency guarantees:
//!
//! * N threads hammering the same netlists get byte-identical results to
//!   the sequential pipeline (shared state introduces no nondeterminism);
//! * a full bounded queue rejects with `QueueFull` instead of deadlocking;
//! * malformed SPICE comes back as a structured per-job error and leaves
//!   the worker pool and result cache healthy.

use gana_core::{Pipeline, Task};
use gana_datasets::{ota, ota_classes, rf, rf_classes};
use gana_gnn::{GcnConfig, GcnModel};
use gana_netlist::{flatten, parse_library, write_spice, SpiceLibrary};
use gana_primitives::PrimitiveLibrary;
use gana_serve::{Annotation, Engine, JobRequest, SubmitError};
use std::sync::Arc;
use std::time::Duration;

fn pipeline_for(task: Task) -> Pipeline {
    let (num_classes, class_names): (usize, Vec<String>) = match task {
        Task::OtaBias => (
            2,
            ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        ),
        Task::Rf => (3, rf_classes::NAMES.iter().map(|s| s.to_string()).collect()),
    };
    let config = GcnConfig {
        conv_channels: vec![8, 8],
        filter_order: 4,
        fc_dim: 16,
        num_classes,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid config"),
        class_names,
        PrimitiveLibrary::standard().expect("library parses"),
        task,
    )
}

fn ota_netlists() -> Vec<String> {
    (0..4)
        .map(|seed| {
            let labeled = ota::generate(ota::OtaSpec {
                topology: ota::OtaTopology::ALL[seed % ota::OtaTopology::ALL.len()],
                pmos_input: seed % 2 == 1,
                bias: ota::BiasStyle::ALL[seed % ota::BiasStyle::ALL.len()],
                seed: seed as u64,
            });
            write_spice(&SpiceLibrary::new(labeled.circuit))
        })
        .collect()
}

fn rf_netlists() -> Vec<String> {
    (0..3)
        .map(|seed| {
            let labeled = rf::generate(rf::ReceiverSpec {
                lna: rf::LnaKind::ALL[seed % rf::LnaKind::ALL.len()],
                mixer: rf::MixerKind::ALL[seed % rf::MixerKind::ALL.len()],
                osc: rf::OscKind::ALL[seed % rf::OscKind::ALL.len()],
                seed: seed as u64,
            });
            write_spice(&SpiceLibrary::new(labeled.circuit))
        })
        .collect()
}

fn sequential_annotation(pipeline: &Pipeline, netlist: &str) -> Annotation {
    let lib = parse_library(netlist).expect("generated netlist parses");
    let flat = flatten(&lib).expect("flattens");
    let design = pipeline.recognize(&flat).expect("recognizes");
    Annotation::from_design(&design)
}

/// The acceptance-criteria test: an 8-worker engine under 8 submitting
/// threads must produce byte-identical annotations to the one-shot
/// sequential pipeline, for both tasks.
#[test]
fn eight_workers_match_sequential_pipeline_byte_for_byte() {
    let ota_pipeline = pipeline_for(Task::OtaBias);
    let rf_pipeline = pipeline_for(Task::Rf);

    // (task, netlist, expected) triples computed sequentially first.
    let mut cases: Vec<(Task, String, Annotation)> = Vec::new();
    for netlist in ota_netlists() {
        let expected = sequential_annotation(&ota_pipeline, &netlist);
        cases.push((Task::OtaBias, netlist, expected));
    }
    for netlist in rf_netlists() {
        let expected = sequential_annotation(&rf_pipeline, &netlist);
        cases.push((Task::Rf, netlist, expected));
    }

    // Cache disabled so every submission really exercises a worker.
    let engine = Arc::new(
        Engine::builder()
            .pipeline(ota_pipeline)
            .pipeline(rf_pipeline)
            .workers(8)
            .result_cache_capacity(0)
            .build(),
    );

    let threads: Vec<_> = (0..8)
        .map(|thread_id| {
            let engine = Arc::clone(&engine);
            let cases = cases.clone();
            std::thread::spawn(move || {
                // Each thread walks the cases from a different offset so
                // workers interleave tasks and netlists.
                for round in 0..cases.len() {
                    let (task, netlist, expected) = &cases[(round + thread_id) % cases.len()];
                    let handle = engine
                        .submit_blocking(JobRequest::new(netlist.clone(), *task))
                        .expect("engine accepts while running");
                    let got = handle.wait().expect("annotation succeeds");
                    assert_eq!(&*got, expected, "thread {thread_id} round {round}");
                    assert_eq!(
                        got.hierarchical_spice.as_bytes(),
                        expected.hierarchical_spice.as_bytes(),
                        "hierarchical export must be byte-identical"
                    );
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().expect("submitter thread panicked");
    }

    let stats = engine.stats();
    assert_eq!(stats.completed, 8 * cases.len() as u64);
    assert_eq!(stats.failed, 0);
}

/// A saturated queue must reject immediately, not deadlock.
#[test]
fn full_queue_returns_queue_full_instead_of_deadlocking() {
    let engine = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .workers(1)
        .queue_capacity(1)
        .build();

    // Block the single worker, then fill the single queue slot.
    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let blocker = engine
        .submit_custom(Box::new(move || {
            gate_rx.recv().ok();
            Err(gana_serve::JobError::Cancelled)
        }))
        .expect("blocker admitted");
    // Wait until the worker has picked the blocker up (queue drains to 0).
    while engine.queue_depth() > 0 {
        std::thread::yield_now();
    }
    let queued = engine
        .submit_custom(Box::new(|| Err(gana_serve::JobError::Cancelled)))
        .expect("one job fits the queue");

    // Queue is now full; a non-blocking submit must bounce right away.
    let netlist = &ota_netlists()[0];
    match engine.submit(JobRequest::new(netlist.clone(), Task::OtaBias)) {
        Err(SubmitError::QueueFull) => {}
        other => panic!("expected QueueFull, got {other:?}"),
    }
    assert_eq!(engine.stats().rejected, 1);

    // Deadlines expire while stuck behind the blocker.
    let expired = engine.submit(JobRequest::new(netlist.clone(), Task::OtaBias)); // still full
    assert!(matches!(expired, Err(SubmitError::QueueFull)));

    // Unblock and verify the engine finishes cleanly.
    gate_tx.send(()).expect("worker is waiting");
    assert!(blocker.wait().is_err());
    assert!(queued.wait().is_err());
    let ok = engine
        .submit(JobRequest::new(netlist.clone(), Task::OtaBias))
        .expect("queue drained");
    ok.wait().expect("engine still healthy");
}

/// Queue deadlines: a job that waits longer than its deadline is dropped
/// with a structured error, not silently run late.
#[test]
fn queued_job_past_deadline_is_expired() {
    let engine = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .workers(1)
        .queue_capacity(4)
        .build();

    let (gate_tx, gate_rx) = std::sync::mpsc::channel::<()>();
    let blocker = engine
        .submit_custom(Box::new(move || {
            gate_rx.recv().ok();
            Err(gana_serve::JobError::Cancelled)
        }))
        .expect("blocker admitted");
    while engine.queue_depth() > 0 {
        std::thread::yield_now();
    }

    let netlist = ota_netlists().remove(0);
    let doomed = engine
        .submit(JobRequest::new(netlist, Task::OtaBias).with_deadline(Duration::from_millis(20)))
        .expect("admitted");
    std::thread::sleep(Duration::from_millis(60));
    gate_tx.send(()).expect("worker is waiting");
    assert!(blocker.wait().is_err());
    assert_eq!(doomed.wait(), Err(gana_serve::JobError::DeadlineExceeded));
    assert_eq!(engine.stats().expired, 1);
}

/// Malformed SPICE is a per-job error; the worker survives and the result
/// cache never stores failures.
#[test]
fn malformed_netlist_is_structured_error_and_does_not_poison_anything() {
    let engine = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .workers(1)
        .result_cache_capacity(16)
        .build();

    let garbage = "M0 only three tokens\n.SUBCKT unclosed a b\nM1 a b NMOS\n";
    for _ in 0..3 {
        let err = engine
            .submit(JobRequest::new(garbage, Task::OtaBias))
            .expect("admitted")
            .wait()
            .expect_err("garbage must not annotate");
        assert_eq!(err.code(), "parse", "got {err:?}");
    }
    let stats = engine.stats();
    assert_eq!(stats.failed, 3);
    // Failures are never cached — each retry reparses and fails afresh.
    assert_eq!(stats.cache_hits, 0);

    // The same worker then serves a good netlist.
    let good = &ota_netlists()[0];
    let annotation = engine
        .submit(JobRequest::new(good.clone(), Task::OtaBias))
        .expect("admitted")
        .wait()
        .expect("worker survived the garbage");
    assert!(!annotation.device_labels.is_empty());
}
