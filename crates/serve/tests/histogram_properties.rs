//! Property tests for the HDR-style latency histogram: merging snapshots
//! must behave exactly like recording the concatenated sample streams, and
//! every reported quantile must stay within the bucket error bound of the
//! true sample quantile.

use gana_serve::{HistogramSnapshot, LatencyHistogram};
use proptest::prelude::*;
use std::time::Duration;

/// Sub-bucket resolution of the histogram under test (2^5 linear
/// sub-buckets per octave): the relative quantile error bound.
const SUB_COUNT: u64 = 32;

fn record_all(samples: &[u64]) -> HistogramSnapshot {
    let h = LatencyHistogram::default();
    for &us in samples {
        h.record(Duration::from_micros(us));
    }
    h.snapshot()
}

/// Exact sample quantile under the histogram's rank rule: the ceil(q·n)-th
/// smallest sample (1-indexed, clamped to at least the first).
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).max(1);
    sorted[rank.min(sorted.len()) - 1]
}

proptest! {
    /// merge(a, b) quantiles equal the quantiles of the concatenated
    /// samples within the bucket error bound: never below the true
    /// quantile, at most `1/SUB_COUNT` (plus the integer bucket edge)
    /// above it.
    #[test]
    fn merged_quantiles_match_concatenated_samples(
        a in proptest::collection::vec(0u64..2_000_000, 1..80),
        b in proptest::collection::vec(0u64..2_000_000, 1..80),
        q in 0.0f64..=1.0,
    ) {
        let mut merged = record_all(&a);
        merged.merge(&record_all(&b));

        let mut all: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        all.sort_unstable();
        prop_assert_eq!(merged.samples(), all.len() as u64, "count conservation");

        let exact = exact_quantile(&all, q);
        let reported = merged.quantile_us(q);
        prop_assert!(reported >= exact, "reported {reported} < exact {exact}");
        let bound = exact + exact / SUB_COUNT + 1;
        prop_assert!(
            reported <= bound,
            "reported {reported} > bound {bound} (exact {exact})"
        );
    }

    /// Merging is order-independent and equals recording everything into
    /// one histogram.
    #[test]
    fn merge_is_commutative_and_stream_equivalent(
        a in proptest::collection::vec(0u64..1_000_000, 0..60),
        b in proptest::collection::vec(0u64..1_000_000, 0..60),
    ) {
        let (sa, sb) = (record_all(&a), record_all(&b));
        let mut ab = sa.clone();
        ab.merge(&sb);
        let mut ba = sb.clone();
        ba.merge(&sa);
        prop_assert_eq!(&ab, &ba);

        let concat: Vec<u64> = a.iter().chain(b.iter()).copied().collect();
        prop_assert_eq!(&ab, &record_all(&concat));
    }

    /// The wire encoding round-trips any recorded distribution.
    #[test]
    fn snapshot_encoding_round_trips(
        samples in proptest::collection::vec(0u64..10_000_000, 0..100),
    ) {
        let snap = record_all(&samples);
        let decoded = HistogramSnapshot::decode(&snap.encode());
        prop_assert_eq!(Some(snap), decoded);
    }
}
