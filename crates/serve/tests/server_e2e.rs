//! End-to-end test of the TCP daemon: real sockets on an ephemeral port,
//! the blocking client, batching, stats, error responses, and graceful
//! shutdown via the wire protocol.

use gana_core::{Pipeline, Task};
use gana_datasets::{ota, ota_classes};
use gana_gnn::{GcnConfig, GcnModel};
use gana_netlist::{write_spice, SpiceLibrary};
use gana_primitives::PrimitiveLibrary;
use gana_serve::client::Client;
use gana_serve::server::{serve, ServerConfig};
use gana_serve::Engine;
use std::sync::Arc;

fn ota_pipeline() -> Pipeline {
    let config = GcnConfig {
        conv_channels: vec![8, 8],
        filter_order: 4,
        fc_dim: 16,
        num_classes: 2,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid config"),
        ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        PrimitiveLibrary::standard().expect("library parses"),
        Task::OtaBias,
    )
}

fn ota_netlist(seed: u64) -> String {
    let labeled = ota::generate(ota::OtaSpec {
        topology: ota::OtaTopology::ALL[seed as usize % ota::OtaTopology::ALL.len()],
        pmos_input: seed % 2 == 1,
        bias: ota::BiasStyle::ALL[seed as usize % ota::BiasStyle::ALL.len()],
        seed,
    });
    write_spice(&SpiceLibrary::new(labeled.circuit))
}

#[test]
fn daemon_round_trip_batch_stats_and_graceful_shutdown() {
    let engine = Arc::new(
        Engine::builder()
            .pipeline(ota_pipeline())
            .workers(4)
            .build(),
    );
    let handle = serve(
        Arc::clone(&engine),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stats_interval: None,
            snapshot_interval: None,
        },
    )
    .expect("binds an ephemeral port");
    let addr = handle.local_addr();

    let mut client = Client::connect(addr).expect("connects");
    client.ping().expect("daemon is alive");

    // Single annotate round trip.
    let netlist = ota_netlist(0);
    let annotation = client
        .annotate(&netlist, Task::OtaBias, None)
        .expect("annotates");
    assert!(!annotation.device_labels.is_empty());
    assert!(annotation.hierarchical_spice.contains(".SUBCKT"));

    // Batch: all admitted before any reply; responses arrive in order.
    let netlists: Vec<String> = (0..4).map(ota_netlist).collect();
    let refs: Vec<&str> = netlists.iter().map(String::as_str).collect();
    let results = client
        .annotate_batch(&refs, Task::OtaBias, None)
        .expect("batch framing survives");
    assert_eq!(results.len(), 4);
    for result in &results {
        assert!(result.is_ok(), "batch entry failed: {result:?}");
    }
    // Entry 0 repeats the earlier single submission: answered by the cache.
    assert_eq!(
        results[0].as_ref().expect("ok").hierarchical_spice,
        annotation.hierarchical_spice
    );

    // Malformed SPICE over the wire: structured per-job error, the
    // connection and daemon stay up.
    let err = client
        .annotate("M0 not a netlist\n", Task::OtaBias, None)
        .expect_err("garbage must fail");
    match err {
        gana_serve::client::ClientError::Job { code, .. } => assert_eq!(code, "parse"),
        other => panic!("expected a job error, got {other}"),
    }
    client.ping().expect("connection survived the error");

    // A second concurrent connection sees the same engine.
    let mut second = Client::connect(addr).expect("second connection");
    let stats = second.stats().expect("stats round trip");
    assert!(stats.submitted >= 6, "daemon counted our jobs: {stats:?}");
    assert_eq!(stats.workers, 4);

    // Graceful shutdown over the wire; the server joins and the engine
    // refuses new work afterwards.
    second.shutdown().expect("daemon acknowledges");
    handle.join();
    assert!(engine.is_shutting_down());
    assert!(
        Client::connect(addr).is_err(),
        "listener is closed after shutdown"
    );
}
