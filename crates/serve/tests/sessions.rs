//! End-to-end test of stateful sessions: `open`/`update`/`close` over the
//! wire, region-cache counters in `stats`, and session error codes.

use gana_core::{Pipeline, Task};
use gana_datasets::mutate::{self, MutationConfig};
use gana_datasets::{ota, ota_classes};
use gana_gnn::{GcnConfig, GcnModel};
use gana_netlist::{write_spice, SpiceLibrary};
use gana_primitives::PrimitiveLibrary;
use gana_serve::client::{Client, ClientError};
use gana_serve::server::{serve, ServerConfig};
use gana_serve::Engine;
use std::sync::Arc;

fn ota_pipeline() -> Pipeline {
    let config = GcnConfig {
        conv_channels: vec![8, 8],
        filter_order: 4,
        fc_dim: 16,
        num_classes: 2,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid config"),
        ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        PrimitiveLibrary::standard().expect("library parses"),
        Task::OtaBias,
    )
}

fn base() -> gana_datasets::LabeledCircuit {
    ota::generate(ota::OtaSpec {
        topology: ota::OtaTopology::Miller,
        pmos_input: false,
        bias: ota::BiasStyle::MirrorRef,
        seed: 9,
    })
}

fn spice_of(circuit: gana_netlist::Circuit) -> String {
    write_spice(&SpiceLibrary::new(circuit))
}

#[test]
fn session_open_update_close_round_trip() {
    let engine = Arc::new(
        Engine::builder()
            .pipeline(ota_pipeline())
            .workers(2)
            .build(),
    );
    let handle = serve(
        Arc::clone(&engine),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stats_interval: None,
            snapshot_interval: None,
        },
    )
    .expect("binds an ephemeral port");
    let mut client = Client::connect(handle.local_addr()).expect("connects");

    let labeled = base();
    let netlist = spice_of(labeled.circuit.clone());
    let (session, opened) = client.open(&netlist, Task::OtaBias).expect("opens");
    assert!(!opened.device_labels.is_empty());

    // The session annotation matches the stateless path exactly.
    let stateless = client
        .annotate(&netlist, Task::OtaBias, None)
        .expect("stateless annotate");
    assert_eq!(opened, stateless);

    // Resize-only edit: the incremental path answers via the full splice
    // and the splice counter moves.
    let edited = mutate::apply(
        labeled,
        MutationConfig {
            split_parallel: 0.0,
            add_dummy: 0.0,
            add_decap: 0.0,
            jitter_sizes: true,
        },
        5,
    );
    let updated = client
        .update(session, &spice_of(edited.circuit))
        .expect("incremental update");
    assert_eq!(
        updated.device_labels, opened.device_labels,
        "a pure resize keeps every label"
    );

    let stats = client.stats().expect("stats round trip");
    assert_eq!(stats.sessions, 1, "one session open: {stats:?}");
    assert!(
        stats.region_splices >= 1,
        "resize edit full-spliced: {stats:?}"
    );

    // Unknown session: structured error with code "session"; the
    // connection stays usable.
    match client.update(session + 100, &netlist) {
        Err(ClientError::Job { code, .. }) => assert_eq!(code, "session"),
        other => panic!("expected a session job error, got {other:?}"),
    }
    client.ping().expect("connection survived the error");

    // Close releases state; a second close reports the same session code.
    client.close(session).expect("closes");
    let stats = client.stats().expect("stats after close");
    assert_eq!(stats.sessions, 0, "session released: {stats:?}");
    match client.close(session) {
        Err(ClientError::Job { code, .. }) => assert_eq!(code, "session"),
        other => panic!("expected a session job error, got {other:?}"),
    }
    match client.update(session, &netlist) {
        Err(ClientError::Job { code, .. }) => assert_eq!(code, "session"),
        other => panic!("expected a session job error, got {other:?}"),
    }

    handle.shutdown();
}

#[test]
fn disconnect_without_close_releases_sessions() {
    let engine = Arc::new(
        Engine::builder()
            .pipeline(ota_pipeline())
            .workers(2)
            .build(),
    );
    let handle = serve(
        Arc::clone(&engine),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stats_interval: None,
            snapshot_interval: None,
        },
    )
    .expect("binds an ephemeral port");
    let netlist = spice_of(base().circuit);
    {
        let mut client = Client::connect(handle.local_addr()).expect("connects");
        client.open(&netlist, Task::OtaBias).expect("opens");
        assert_eq!(engine.session_count(), 1);
        // Dropped here without `close`: the TCP stream just goes away.
    }
    // The connection thread notices the hangup within one poll interval
    // and must release everything the connection opened.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while engine.session_count() != 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "session leaked after disconnect"
        );
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    handle.shutdown();
}

#[test]
fn engine_sessions_share_one_region_cache() {
    use gana_serve::JobRequest;

    let engine = Engine::builder()
        .pipeline(ota_pipeline())
        .workers(2)
        .build();
    let netlist = spice_of(base().circuit);

    let (first, handle) = engine
        .open_session(JobRequest::new(netlist.clone(), Task::OtaBias))
        .expect("admits");
    handle.wait().expect("opens");
    let (second, handle) = engine
        .open_session(JobRequest::new(netlist.clone(), Task::OtaBias))
        .expect("admits");
    handle.wait().expect("opens");
    assert_ne!(first, second, "sessions get distinct ids");
    assert_eq!(engine.session_count(), 2);

    // The second cold open replays the first one's sub-block matches from
    // the shared content-addressed cache.
    let stats = engine.stats();
    assert!(
        stats.region_hits >= 1,
        "second open hits the shared cache: {stats:?}"
    );

    assert!(engine.close_session(first));
    assert!(!engine.close_session(first), "double close is visible");
    assert!(engine.close_session(second));
    engine.shutdown();
}
