//! Warm-start equivalence and mixed-protocol serving:
//!
//! * an engine restored from a snapshot (`warm_from`) produces byte-identical
//!   annotations to the engine that wrote it, across all four circuit
//!   families (ota, rf, sc-filter, phased-array);
//! * one daemon serves a legacy text client and a binary-frame client on
//!   concurrent connections with identical results;
//! * a desynced binary stream gets one structured error frame and a close,
//!   without disturbing other connections.

use gana_core::{Pipeline, Task};
use gana_datasets::{ota, ota_classes, phased_array, rf, rf_classes, sc_filter};
use gana_gnn::{GcnConfig, GcnModel};
use gana_netlist::{write_spice, SpiceLibrary};
use gana_persist::EngineSnapshot;
use gana_primitives::PrimitiveLibrary;
use gana_serve::client::{Client, ClientError};
use gana_serve::frame;
use gana_serve::protocol::Response;
use gana_serve::server::{serve, ServerConfig};
use gana_serve::{Annotation, Engine, JobRequest};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::Arc;

fn pipeline_for(task: Task) -> Pipeline {
    let (num_classes, class_names): (usize, Vec<String>) = match task {
        Task::OtaBias => (
            2,
            ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        ),
        Task::Rf => (3, rf_classes::NAMES.iter().map(|s| s.to_string()).collect()),
    };
    let config = GcnConfig {
        conv_channels: vec![8, 8],
        filter_order: 4,
        fc_dim: 16,
        num_classes,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid config"),
        class_names,
        PrimitiveLibrary::standard().expect("library parses"),
        task,
    )
}

/// One netlist per circuit family, paired with the task that annotates it.
fn family_netlists() -> Vec<(&'static str, Task, String)> {
    let spice = |c| write_spice(&SpiceLibrary::new(c));
    vec![
        (
            "ota",
            Task::OtaBias,
            spice(
                ota::generate(ota::OtaSpec {
                    topology: ota::OtaTopology::Miller,
                    pmos_input: true,
                    bias: ota::BiasStyle::MirrorRef,
                    seed: 1,
                })
                .circuit,
            ),
        ),
        (
            "rf",
            Task::Rf,
            spice(
                rf::generate(rf::ReceiverSpec {
                    lna: rf::LnaKind::ALL[0],
                    mixer: rf::MixerKind::ALL[1],
                    osc: rf::OscKind::ALL[2],
                    seed: 2,
                })
                .circuit,
            ),
        ),
        ("sc-filter", Task::Rf, spice(sc_filter::generate(3).circuit)),
        (
            "phased-array",
            Task::Rf,
            spice(phased_array::generate(1).circuit),
        ),
    ]
}

fn annotate_all(engine: &Engine, inputs: &[(&str, Task, String)]) -> Vec<Arc<Annotation>> {
    inputs
        .iter()
        .map(|(family, task, netlist)| {
            engine
                .submit(JobRequest::new(netlist.clone(), *task))
                .unwrap_or_else(|e| panic!("{family} admits: {e}"))
                .wait()
                .unwrap_or_else(|e| panic!("{family} annotates: {e}"))
        })
        .collect()
}

fn scratch_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("gana-warm-{}-{name}.gsnap", std::process::id()))
}

/// The acceptance-criteria test: save a snapshot from a live engine, build
/// a second engine from it, and require byte-identical annotations for all
/// four circuit families.
#[test]
fn warm_started_engine_reproduces_annotations_byte_for_byte() {
    let path = scratch_path("equivalence");
    let inputs = family_netlists();

    let cold = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .pipeline(pipeline_for(Task::Rf))
        .snapshot_path(&path)
        .workers(2)
        .build();
    assert!(!cold.warm_start(), "a fresh engine is a cold start");
    let cold_annotations = annotate_all(&cold, &inputs);

    let bytes = cold
        .save_snapshot()
        .expect("snapshot saves")
        .expect("a snapshot path is configured");
    assert!(bytes > 0, "snapshot is non-empty");
    let stats = cold.stats();
    assert_eq!(stats.snapshot_bytes, bytes, "stats report the saved size");
    assert!(!stats.warm_start);
    cold.shutdown();

    let snapshot = EngineSnapshot::load(&path).expect("snapshot loads");
    let warm = Engine::builder().warm_from(snapshot).workers(2).build();
    assert!(warm.warm_start(), "restored engines report a warm start");
    assert!(warm.stats().warm_start, "stats carry the warm-start flag");

    let warm_annotations = annotate_all(&warm, &inputs);
    for ((family, _, _), (cold_a, warm_a)) in inputs
        .iter()
        .zip(cold_annotations.iter().zip(&warm_annotations))
    {
        assert_eq!(
            cold_a, warm_a,
            "{family}: warm-started engine must reproduce the annotation exactly"
        );
    }
    warm.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// Engine shutdown with a configured snapshot path persists state at drain
/// time, so an abrupt stop still leaves a loadable snapshot behind.
#[test]
fn drain_time_snapshot_is_loadable() {
    let path = scratch_path("drain");
    let inputs = family_netlists();
    let engine = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .pipeline(pipeline_for(Task::Rf))
        .snapshot_path(&path)
        .workers(2)
        .build();
    let annotations = annotate_all(&engine, &inputs);
    // No explicit save: shutdown itself must write the snapshot.
    engine.shutdown();

    let snapshot = EngineSnapshot::load(&path).expect("drain snapshot loads");
    let warm = Engine::builder().warm_from(snapshot).workers(2).build();
    let warm_annotations = annotate_all(&warm, &inputs);
    assert_eq!(annotations, warm_annotations);
    warm.shutdown();
    let _ = std::fs::remove_file(&path);
}

/// One text client and one binary client against the same daemon: both
/// protocols answer every verb with identical payloads, and a desynced
/// binary stream is rejected without taking the daemon down.
#[test]
fn mixed_text_and_binary_clients_share_one_server() {
    let engine = Arc::new(
        Engine::builder()
            .pipeline(pipeline_for(Task::OtaBias))
            .workers(2)
            .build(),
    );
    let handle = serve(
        Arc::clone(&engine),
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stats_interval: None,
            snapshot_interval: None,
        },
    )
    .expect("binds an ephemeral port");
    let addr = handle.local_addr();

    let mut text = Client::connect(addr).expect("text client connects");
    let mut binary = Client::connect_binary(addr).expect("binary client connects");
    assert!(!text.is_binary());
    assert!(binary.is_binary());
    text.ping().expect("text ping");
    binary.ping().expect("binary ping");

    let netlist = &family_netlists()[0].2;
    let from_text = text
        .annotate(netlist, Task::OtaBias, None)
        .expect("text annotate");
    let from_binary = binary
        .annotate(netlist, Task::OtaBias, None)
        .expect("binary annotate");
    assert_eq!(
        from_text, from_binary,
        "both protocols carry the same annotation"
    );

    // Batches frame correctly in binary mode too.
    let refs = [netlist.as_str(), netlist.as_str()];
    let results = binary
        .annotate_batch(&refs, Task::OtaBias, None)
        .expect("binary batch");
    assert_eq!(results.len(), 2);
    for result in &results {
        assert_eq!(result.as_ref().expect("batch entry"), &from_binary);
    }

    // Sessions work over binary frames.
    let (session, opened) = binary.open(netlist, Task::OtaBias).expect("binary open");
    assert_eq!(opened, from_binary);
    binary.close(session).expect("binary close");

    // A malformed netlist in a well-formed frame is a per-request error:
    // the connection survives.
    match binary.annotate("M0 not a netlist\n", Task::OtaBias, None) {
        Err(ClientError::Job { code, .. }) => assert_eq!(code, "parse"),
        other => panic!("expected a job error, got {other:?}"),
    }
    binary.ping().expect("binary connection survived the error");

    // A desynced stream (future frame version) gets one structured error
    // frame, then the server closes that connection only.
    let mut raw = TcpStream::connect(addr).expect("raw connection");
    raw.write_all(&[frame::FRAME_MAGIC, frame::FRAME_VERSION + 1, 0, 0, 0, 0])
        .expect("writes a bad header");
    raw.flush().expect("flushes");
    let body = frame::read_frame(&mut raw)
        .expect("server answers with a frame")
        .expect("an error frame, not silence");
    match frame::decode_response(&body).expect("error frame decodes") {
        Response::Err { code, .. } => assert_eq!(code, "protocol"),
        other => panic!("expected an error response, got {other:?}"),
    }
    assert!(
        matches!(frame::read_frame(&mut raw), Ok(None)),
        "server closes a desynced connection"
    );

    // The other clients are unaffected.
    let stats = binary.stats().expect("binary stats");
    assert_eq!(stats.workers, 2);
    assert!(stats.submitted >= 4, "daemon counted our jobs: {stats:?}");
    text.ping().expect("text connection still healthy");

    text.shutdown().expect("daemon acknowledges shutdown");
    handle.join();
    assert!(engine.is_shutting_down());
}
