//! A minimal shard daemon for `gana-shard` integration tests.
//!
//! Production fleets use the full `gana serve` CLI as the shard command;
//! this binary is the in-crate equivalent (`CARGO_BIN_EXE_gana-shard-worker`)
//! so the crate's tests do not depend on the workspace root's binary. It
//! boots *only* warm — the snapshot in `--snapshot-dir` is the model — and
//! honors the same supervisor contract: `--addr`/`--snapshot-dir` flags,
//! PID file, SIGTERM drain.

use gana_persist::EngineSnapshot;
use gana_serve::server::{serve, ServerConfig};
use gana_serve::Engine;
use gana_shard::daemon::{run_until_shutdown, PidFile};
use std::time::Duration;

fn parse_args() -> Result<std::collections::HashMap<String, String>, String> {
    let mut flags = std::collections::HashMap::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let key = arg
            .strip_prefix("--")
            .ok_or_else(|| format!("unexpected argument {arg:?}"))?;
        let value = args
            .next()
            .ok_or_else(|| format!("--{key} needs a value"))?;
        flags.insert(key.to_string(), value);
    }
    Ok(flags)
}

fn run() -> Result<(), String> {
    let flags = parse_args()?;
    let addr = flags
        .get("addr")
        .cloned()
        .unwrap_or_else(|| "127.0.0.1:0".to_string());
    let snapshot_dir = flags
        .get("snapshot-dir")
        .ok_or("missing --snapshot-dir DIR")?;
    let workers: usize = flags
        .get("workers")
        .map(|w| w.parse().map_err(|e| format!("--workers: {e}")))
        .transpose()?
        .unwrap_or(1);

    let snapshot_path = std::path::Path::new(snapshot_dir).join("engine.gsnap");
    let snapshot = EngineSnapshot::load(&snapshot_path)
        .map_err(|e| format!("cannot warm-start from {}: {e}", snapshot_path.display()))?;

    let _pid = flags
        .get("pid-file")
        .map(PidFile::write)
        .transpose()
        .map_err(|e| format!("pid file: {e}"))?;

    let engine = std::sync::Arc::new(
        Engine::builder()
            .warm_from(snapshot)
            .snapshot_path(snapshot_path)
            .workers(workers)
            .build(),
    );
    let config = ServerConfig {
        addr: addr.clone(),
        stats_interval: None,
        snapshot_interval: Some(Duration::from_secs(300)),
    };
    let handle = serve(engine, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    eprintln!("[gana-shard-worker] listening on {}", handle.local_addr());
    run_until_shutdown(&handle);
    Ok(())
}

fn main() {
    if let Err(err) = run() {
        eprintln!("gana-shard-worker: {err}");
        std::process::exit(1);
    }
}
