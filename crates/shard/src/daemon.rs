//! Daemon-side plumbing for supervised `gana serve` processes: a PID file
//! and a SIGTERM-aware replacement for blocking on the server handle.

use crate::sys;
use gana_serve::ServerHandle;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

/// A PID file that exists exactly while its owner runs: written on
/// creation, removed on drop. Supervisors and operators use it to find
/// the daemon to signal; a stale file after a crash is overwritten by the
/// next boot.
#[derive(Debug)]
pub struct PidFile {
    path: PathBuf,
}

impl PidFile {
    /// Writes the current process id to `path`.
    pub fn write(path: impl AsRef<Path>) -> io::Result<PidFile> {
        let path = path.as_ref().to_path_buf();
        std::fs::write(&path, format!("{}\n", std::process::id()))?;
        Ok(PidFile { path })
    }

    /// Where the pid was written.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for PidFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Blocks until the server stops, treating SIGTERM/SIGINT as a graceful
/// drain: the handler flag (installed here) turns the signal into
/// [`ServerHandle::shutdown`], which stops admission, drains in-flight
/// jobs, and writes the drain-time snapshot — exactly what a `shutdown`
/// wire request does. Returns when all server threads have exited.
pub fn run_until_shutdown(handle: &ServerHandle) {
    sys::install_term_handler();
    loop {
        if sys::term_requested() {
            handle.shutdown();
            return;
        }
        if handle.is_stopped() {
            handle.join();
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pid_file_lives_and_dies_with_its_guard() {
        let path = std::env::temp_dir().join(format!("gana-pid-test-{}", std::process::id()));
        {
            let pid = PidFile::write(&path).expect("writes");
            let text = std::fs::read_to_string(pid.path()).expect("readable");
            assert_eq!(
                text.trim().parse::<u32>().expect("a pid"),
                std::process::id()
            );
        }
        assert!(!path.exists(), "removed on drop");
    }
}
