//! `gana-shard`: horizontal sharding for the annotation service.
//!
//! One `gana serve` engine holds its sessions, region cache, and snapshot
//! in a single process. This crate turns N such processes into one
//! deployment with near-linear capacity while keeping every piece of
//! warm state exactly where repeat traffic will find it:
//!
//! * [`ring`] — consistent-hash ring over shard ids with cross-process-
//!   stable placement (same `StableSip` discipline as the persisted WL
//!   fingerprints) and bounded key movement on shard join/leave.
//! * [`topology`] — the live fleet view: shard id → address + health,
//!   shared between the router (reads) and the supervisor (writes).
//! * [`router`] — a front end accepting text *and* binary clients on one
//!   port, routing netlists/sessions by content key onto shards over the
//!   binary frame protocol, and aggregating per-shard stats into one
//!   fleet view.
//! * [`supervisor`] — spawns one engine daemon per shard, each with its
//!   own snapshot directory, health-checks them with deadline-bounded
//!   wire pings, warm-restarts crashed or hung shards from their
//!   snapshots, and replays the drain protocol on planned shutdown.
//! * [`daemon`] / [`sys`] — PID files and minimal Unix signal plumbing so
//!   a supervisor (this crate's or an init system) can tell a planned
//!   drain from a crash.
//!
//! Circuit/session affinity is the partitioning key: a session's
//! incremental baseline and a netlist's cached region annotations live on
//! exactly one shard, so routing by content keeps hitting warm state, and
//! a shard's snapshot file is a complete warm-restart image of its slice
//! of the fleet.

#![warn(missing_docs)]

pub mod daemon;
pub mod ring;
pub mod router;
pub mod supervisor;
pub mod sys;
pub mod topology;

pub use ring::{Ring, RING_REPLICAS};
pub use router::{serve_router, RouterConfig, RouterHandle, SHARD_UNAVAILABLE};
pub use supervisor::{Cluster, ClusterConfig, ShardCommand};
pub use topology::{ShardStatus, Topology};
