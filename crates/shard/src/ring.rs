//! Consistent-hash ring mapping routing keys onto shard ids.
//!
//! Each shard owns [`RING_REPLICAS`] pseudo-random points on a `u64`
//! circle; a key is served by the shard owning the first point at or after
//! the key (wrapping). Because points are derived only from the shard id
//! (via the same cross-process-stable [`Digest`] behind the persisted WL
//! fingerprints), every router instance — current or future — computes the
//! identical ring, and adding or removing one shard only re-homes the keys
//! in the arcs that shard's points bound: ~`K/N` of `K` keys on an
//! `N`-shard ring, not all of them.
//!
//! The exact movement guarantees (test-enforced, see the crate's proptests):
//!
//! - **join**: a key's shard either stays unchanged or becomes the new
//!   shard — joining never shuffles keys between pre-existing shards;
//! - **leave**: only keys on the removed shard move, each to the shard
//!   that already owned the next arc.
//!
//! The point derivation is versioned (`gana-shard-ring-v1`) and pinned by
//! tests: changing it would re-home every key in a fleet at once, so treat
//! any change like a persistence-format bump.

use gana_incremental::hash128::Digest;

/// Virtual nodes per shard. More replicas smooth the load split (the
/// largest shard's share concentrates toward `1/N`) at a small ring-build
/// cost; 64 keeps the worst-case imbalance in the low tens of percent.
pub const RING_REPLICAS: u32 = 64;

/// Domain tag folded into every ring point (version 1).
const RING_DOMAIN: &str = "gana-shard-ring-v1";

/// Folds a 128-bit routing key onto the 64-bit ring circle.
fn fold(key: u128) -> u64 {
    (key >> 64) as u64 ^ key as u64
}

/// The ring point for one replica of one shard.
fn point(shard: u64, replica: u32) -> u64 {
    let mut digest = Digest::new();
    digest.write(RING_DOMAIN);
    digest.write(shard);
    digest.write(replica as u64);
    fold(digest.finish())
}

/// Consistent-hash ring over shard ids.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Ring {
    /// `(point, shard)` sorted by point, then shard — the shard tiebreak
    /// makes routing deterministic even on (astronomically unlikely) point
    /// collisions between shards.
    points: Vec<(u64, u64)>,
}

impl Ring {
    /// Builds a ring over `shards` (duplicates are ignored).
    pub fn new(shards: impl IntoIterator<Item = u64>) -> Ring {
        let mut ring = Ring::default();
        for shard in shards {
            ring.add(shard);
        }
        ring
    }

    /// Adds a shard's replicas to the ring. No-op if already present.
    pub fn add(&mut self, shard: u64) {
        if self.contains(shard) {
            return;
        }
        self.points
            .extend((0..RING_REPLICAS).map(|replica| (point(shard, replica), shard)));
        self.points.sort_unstable();
    }

    /// Removes a shard's replicas. No-op if absent.
    pub fn remove(&mut self, shard: u64) {
        self.points.retain(|&(_, owner)| owner != shard);
    }

    /// True when `shard` is on the ring.
    pub fn contains(&self, shard: u64) -> bool {
        self.points.iter().any(|&(_, owner)| owner == shard)
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.points.len() / RING_REPLICAS as usize
    }

    /// True when no shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Sorted shard ids currently on the ring.
    pub fn shards(&self) -> Vec<u64> {
        let mut shards: Vec<u64> = self.points.iter().map(|&(_, owner)| owner).collect();
        shards.sort_unstable();
        shards.dedup();
        shards
    }

    /// The shard owning `key`: the first ring point at or after the folded
    /// key, wrapping past the top of the circle. `None` on an empty ring.
    pub fn route(&self, key: u128) -> Option<u64> {
        if self.points.is_empty() {
            return None;
        }
        let k = fold(key);
        let idx = self.points.partition_point(|&(p, _)| p < k);
        let (_, shard) = self.points[idx % self.points.len()];
        Some(shard)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gana_incremental::routing::{netlist_key, session_key};

    #[test]
    fn routing_is_deterministic_and_total() {
        let ring = Ring::new([0, 1, 2]);
        assert_eq!(ring.len(), 3);
        for session in 0..100 {
            let key = session_key(session);
            let shard = ring.route(key).expect("non-empty ring routes");
            assert!(shard < 3);
            assert_eq!(ring.route(key), Some(shard), "stable on re-query");
        }
        assert_eq!(Ring::default().route(session_key(1)), None);
    }

    #[test]
    fn all_shards_receive_traffic() {
        let ring = Ring::new([0, 1, 2, 3]);
        let mut hit = [false; 4];
        for session in 0..256 {
            hit[ring.route(session_key(session)).unwrap() as usize] = true;
        }
        assert!(
            hit.iter().all(|&h| h),
            "every shard owns some keys: {hit:?}"
        );
    }

    #[test]
    fn add_then_remove_restores_the_ring() {
        let mut ring = Ring::new([0, 1]);
        let before = ring.clone();
        ring.add(7);
        assert_eq!(ring.len(), 3);
        ring.remove(7);
        assert_eq!(ring, before);
        // Idempotence.
        ring.add(0);
        assert_eq!(ring, before);
        ring.remove(99);
        assert_eq!(ring, before);
    }

    /// Pinned routing vectors: ring placement is part of the fleet-wide
    /// contract. If this fails, a router upgrade would re-home every key —
    /// bump `RING_DOMAIN` and document the migration instead.
    #[test]
    fn pinned_ring_vectors() {
        let ring = Ring::new([0, 1, 2]);
        let placements: Vec<u64> = (0..8)
            .map(|session| ring.route(session_key(session)).unwrap())
            .collect();
        assert_eq!(placements, vec![2, 2, 0, 2, 2, 1, 2, 1]);
        assert_eq!(ring.route(netlist_key("M1 a b c d NMOS\n.end\n")), Some(2));
    }
}
