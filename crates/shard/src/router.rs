//! The sharding front end: one listening port, N engine shards behind it.
//!
//! Clients connect exactly as they would to a single `gana serve` daemon —
//! text or binary, auto-detected from the first byte — and the router
//! forwards each request to the shard that owns its key: netlist content
//! ([`gana_incremental::routing::netlist_key`]) for `annotate`/`open`,
//! the session's pinned shard for `update`/`close`. The router→shard hop
//! always speaks the binary frame protocol.
//!
//! Shards number their sessions independently, so the router allocates its
//! own session ids per client connection and rewrites them in both
//! directions; a client never sees a shard-local id. Upstream connections
//! are opened lazily per client connection and dropped with it, which is
//! what scopes shard-side sessions to the client connection exactly as an
//! unsharded daemon would.
//!
//! When the shard owning a key is down (the supervisor is restarting it),
//! the router degrades gracefully instead of hanging: the request fails
//! fast with a structured `shard_unavailable` error carrying a
//! `retry_after_ms=N` hint. Keys on other shards are completely
//! unaffected.
//!
//! `stats` fans out to every live shard and answers with the
//! [aggregate](gana_serve::StatsSnapshot::aggregate); `fleetstats` returns
//! the per-shard snapshots alongside that aggregate.

use crate::topology::Topology;
use gana_incremental::routing::netlist_key;
use gana_serve::client::{Client, RetryPolicy};
use gana_serve::protocol::{Request, Response};
use gana_serve::transport::{accept_transport, ReadRequest, Transport};
use gana_serve::StatsSnapshot;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{self, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Error code for a request whose shard is down or unreachable. The
/// message carries a `retry_after_ms=N` hint
/// ([`gana_serve::ClientError::retry_after_hint`] parses it back).
pub const SHARD_UNAVAILABLE: &str = "shard_unavailable";

/// Router tuning knobs.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Address to bind, e.g. `127.0.0.1:7979` (port `0` picks a free one).
    pub addr: String,
    /// Backoff for dialing a shard that refuses connections (mid-restart).
    pub upstream_retry: RetryPolicy,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:7979".to_string(),
            upstream_retry: RetryPolicy::default(),
        }
    }
}

const POLL: Duration = Duration::from_millis(50);

struct RouterShared {
    topology: Arc<Topology>,
    retry: RetryPolicy,
    stop: AtomicBool,
}

/// Handle to a running router; dropping it shuts the router down (shard
/// daemons are not touched — they belong to the supervisor).
pub struct RouterHandle {
    shared: Arc<RouterShared>,
    local_addr: SocketAddr,
    threads: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

impl RouterHandle {
    /// The bound address (useful with port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// The fleet view this router routes over.
    pub fn topology(&self) -> &Arc<Topology> {
        &self.shared.topology
    }

    /// True once a `shutdown` request (or [`RouterHandle::shutdown`]) has
    /// stopped admission.
    pub fn is_stopped(&self) -> bool {
        self.shared.stop.load(Ordering::SeqCst)
    }

    /// Stops accepting, closes connections, joins all threads. Idempotent.
    pub fn shutdown(&self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }

    /// Blocks until the router stops (e.g. via a `shutdown` request).
    pub fn join(&self) {
        let threads: Vec<_> = self.threads.lock().drain(..).collect();
        for thread in threads {
            let _ = thread.join();
        }
    }
}

impl Drop for RouterHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Binds the router address and spawns its accept loop.
pub fn serve_router(topology: Arc<Topology>, config: RouterConfig) -> io::Result<RouterHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(RouterShared {
        topology,
        retry: config.upstream_retry,
        stop: AtomicBool::new(false),
    });
    let accept_shared = Arc::clone(&shared);
    let accept = std::thread::Builder::new()
        .name("gana-shard-accept".to_string())
        .spawn(move || accept_loop(&listener, &accept_shared))?;
    Ok(RouterHandle {
        shared,
        local_addr,
        threads: Mutex::new(vec![accept]),
    })
}

fn accept_loop(listener: &TcpListener, shared: &Arc<RouterShared>) {
    let mut connections: Vec<std::thread::JoinHandle<()>> = Vec::new();
    while !shared.stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, peer)) => {
                let shared = Arc::clone(shared);
                let spawned = std::thread::Builder::new()
                    .name(format!("gana-shard-conn-{peer}"))
                    .spawn(move || {
                        if let Err(err) = handle_connection(stream, &shared) {
                            if err.kind() != ErrorKind::ConnectionReset {
                                eprintln!("[gana-shard] connection {peer}: {err}");
                            }
                        }
                    });
                match spawned {
                    Ok(handle) => connections.push(handle),
                    Err(err) => eprintln!("[gana-shard] spawn failed: {err}"),
                }
                connections.retain(|c| !c.is_finished());
            }
            Err(err) if err.kind() == ErrorKind::WouldBlock => std::thread::sleep(POLL),
            Err(err) => {
                eprintln!("[gana-shard] accept: {err}");
                std::thread::sleep(POLL);
            }
        }
    }
    for connection in connections {
        let _ = connection.join();
    }
}

/// Per-client-connection proxy state. Upstream clients are lazy, one per
/// shard, and die with the connection — which releases the shard-side
/// (connection-scoped) sessions exactly when the client goes away.
struct Conn {
    upstreams: HashMap<u64, Client>,
    /// Router session id → (shard id, shard-local session id).
    sessions: HashMap<u64, (u64, u64)>,
    next_session: u64,
}

impl Conn {
    fn new() -> Conn {
        Conn {
            upstreams: HashMap::new(),
            sessions: HashMap::new(),
            next_session: 1,
        }
    }

    /// Drops a shard's upstream connection and every router session pinned
    /// to it (their shard-side state died with the shard/connection).
    fn forget_shard(&mut self, shard: u64) {
        self.upstreams.remove(&shard);
        self.sessions.retain(|_, &mut (owner, _)| owner != shard);
    }
}

fn unavailable(shard: u64, retry_after: Duration, detail: &str) -> Response {
    Response::Err {
        code: SHARD_UNAVAILABLE.to_string(),
        message: format!(
            "shard {shard} unavailable: {detail}; retry_after_ms={}",
            retry_after.as_millis()
        ),
    }
}

/// Returns a connected upstream client for `shard`, dialing lazily.
/// `Err` is the structured response to send the client instead.
fn upstream<'a>(
    conn: &'a mut Conn,
    shared: &RouterShared,
    shard: u64,
) -> Result<&'a mut Client, Response> {
    let status = match shared.topology.get(shard) {
        Some(status) => status,
        None => {
            return Err(unavailable(
                shard,
                Duration::from_millis(500),
                "not in the fleet",
            ))
        }
    };
    if !status.up {
        return Err(unavailable(shard, status.retry_after, "restarting"));
    }
    if let std::collections::hash_map::Entry::Vacant(slot) = conn.upstreams.entry(shard) {
        match Client::connect_binary_retrying(status.addr, shared.retry) {
            Ok(client) => {
                slot.insert(client);
            }
            Err(err) => {
                return Err(unavailable(shard, status.retry_after, &err.to_string()));
            }
        }
    }
    Ok(conn.upstreams.get_mut(&shard).expect("just inserted"))
}

/// Forwards one request to `shard` and returns the shard's response. An
/// upstream I/O failure degrades to `shard_unavailable` and drops the
/// (now broken) upstream connection plus the sessions that lived on it.
fn forward(conn: &mut Conn, shared: &RouterShared, shard: u64, request: &Request) -> Response {
    let retry_after = shared
        .topology
        .get(shard)
        .map(|s| s.retry_after)
        .unwrap_or(Duration::from_millis(500));
    let client = match upstream(conn, shared, shard) {
        Ok(client) => client,
        Err(response) => return response,
    };
    match client.request(request) {
        Ok(response) => response,
        Err(err) => {
            conn.forget_shard(shard);
            unavailable(shard, retry_after, &err.to_string())
        }
    }
}

/// Fans `stats` out to every shard and returns the per-shard snapshots
/// (id-ordered; unreachable shards are skipped — the fleet aggregate
/// reflects who answered).
fn gather_stats(conn: &mut Conn, shared: &RouterShared) -> Vec<(u64, StatsSnapshot)> {
    let mut shards = Vec::new();
    for id in shared.topology.shard_ids() {
        let response = forward(conn, shared, id, &Request::Stats);
        if let Response::Stats(wire) = response {
            if let Some(snap) = StatsSnapshot::from_wire(&wire) {
                shards.push((id, snap));
            }
        }
    }
    shards
}

fn handle_connection(stream: TcpStream, shared: &RouterShared) -> io::Result<()> {
    match accept_transport(stream, &shared.stop)? {
        Some(mut transport) => dispatch_loop(transport.as_mut(), shared),
        None => Ok(()),
    }
}

fn dispatch_loop(transport: &mut dyn Transport, shared: &RouterShared) -> io::Result<()> {
    let mut conn = Conn::new();
    loop {
        let request = match transport.read_request(&shared.stop) {
            ReadRequest::Request(request) => request,
            ReadRequest::Bad { message, fatal } => {
                transport.write_response(&Response::Err {
                    code: "protocol".into(),
                    message,
                })?;
                if fatal {
                    return Ok(());
                }
                continue;
            }
            ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
            ReadRequest::Error(err) => return Err(err),
        };
        match request {
            Request::Ping => transport.write_response(&Response::Pong)?,
            Request::Shutdown => {
                // Planned fleet shutdown: acknowledge, stop admission, and
                // let whoever owns the supervisor drain the shards.
                transport.write_response(&Response::Bye)?;
                shared.stop.store(true, Ordering::SeqCst);
                return Ok(());
            }
            Request::Stats => {
                let shards = gather_stats(&mut conn, shared);
                let fleet = StatsSnapshot::aggregate(shards.iter().map(|(_, s)| s));
                transport.write_response(&Response::Stats(fleet.to_wire()))?;
            }
            Request::FleetStats => {
                let shards = gather_stats(&mut conn, shared);
                let fleet = StatsSnapshot::aggregate(shards.iter().map(|(_, s)| s));
                transport.write_response(&Response::Fleet {
                    shards: shards
                        .into_iter()
                        .map(|(id, snap)| (id, snap.to_wire()))
                        .collect(),
                    fleet: fleet.to_wire(),
                })?;
            }
            Request::Annotate { .. } => {
                let response = route_annotate(&mut conn, shared, request);
                transport.write_response(&response)?;
            }
            Request::Open { .. } => {
                let response = route_open(&mut conn, shared, request);
                transport.write_response(&response)?;
            }
            Request::Update { session, netlist } => {
                let response = match conn.sessions.get(&session) {
                    Some(&(shard, shard_session)) => {
                        let forwarded = forward(
                            &mut conn,
                            shared,
                            shard,
                            &Request::Update {
                                session: shard_session,
                                netlist,
                            },
                        );
                        rewrite_session(forwarded, session)
                    }
                    None => Response::Err {
                        code: "session".into(),
                        message: format!("unknown session {session}"),
                    },
                };
                transport.write_response(&response)?;
            }
            Request::Close(session) => {
                let response = match conn.sessions.get(&session) {
                    Some(&(shard, shard_session)) => {
                        match forward(&mut conn, shared, shard, &Request::Close(shard_session)) {
                            Response::Closed(_) => {
                                conn.sessions.remove(&session);
                                Response::Closed(session)
                            }
                            other => other,
                        }
                    }
                    None => Response::Err {
                        code: "session".into(),
                        message: format!("unknown session {session}"),
                    },
                };
                transport.write_response(&response)?;
            }
            Request::Batch(count) => {
                route_batch(transport, &mut conn, shared, count)?;
            }
        }
    }
}

fn route_annotate(conn: &mut Conn, shared: &RouterShared, request: Request) -> Response {
    let Request::Annotate { ref netlist, .. } = request else {
        unreachable!("caller matched Annotate");
    };
    match shared.topology.route(netlist_key(netlist)) {
        Some((shard, _)) => forward(conn, shared, shard, &request),
        None => Response::Err {
            code: SHARD_UNAVAILABLE.to_string(),
            message: "fleet has no shards; retry_after_ms=1000".to_string(),
        },
    }
}

fn route_open(conn: &mut Conn, shared: &RouterShared, request: Request) -> Response {
    let Request::Open { ref netlist, .. } = request else {
        unreachable!("caller matched Open");
    };
    let shard = match shared.topology.route(netlist_key(netlist)) {
        Some((shard, _)) => shard,
        None => {
            return Response::Err {
                code: SHARD_UNAVAILABLE.to_string(),
                message: "fleet has no shards; retry_after_ms=1000".to_string(),
            }
        }
    };
    match forward(conn, shared, shard, &request) {
        Response::Session {
            session: shard_session,
            annotation,
        } => {
            // Shards number sessions independently; hand the client a
            // router-scoped id and remember the mapping.
            let session = conn.next_session;
            conn.next_session += 1;
            conn.sessions.insert(session, (shard, shard_session));
            Response::Session {
                session,
                annotation,
            }
        }
        other => other,
    }
}

/// Replaces the shard-local session id in a `sess` response with the
/// router-scoped one the client knows.
fn rewrite_session(response: Response, session: u64) -> Response {
    match response {
        Response::Session { annotation, .. } => Response::Session {
            session,
            annotation,
        },
        other => other,
    }
}

/// Proxies a batch: members are grouped per owning shard, every sub-batch
/// is admitted (sent) before any reply is awaited — preserving the batch
/// protocol's admit-all-then-wait semantics across the whole fleet — and
/// replies are reassembled into the client's original order.
fn route_batch(
    transport: &mut dyn Transport,
    conn: &mut Conn,
    shared: &RouterShared,
    count: usize,
) -> io::Result<()> {
    // Collect the announced members off the client connection first.
    let mut members: Vec<Result<Request, Response>> = Vec::with_capacity(count);
    for _ in 0..count {
        match transport.read_request(&shared.stop) {
            ReadRequest::Request(request @ Request::Annotate { .. }) => members.push(Ok(request)),
            ReadRequest::Request(other) => members.push(Err(Response::Err {
                code: "protocol".into(),
                message: format!("batch expects annotate lines, got {other:?}"),
            })),
            ReadRequest::Bad { message, fatal } => {
                if fatal {
                    transport.write_response(&Response::Err {
                        code: "protocol".into(),
                        message,
                    })?;
                    return Ok(());
                }
                members.push(Err(Response::Err {
                    code: "protocol".into(),
                    message,
                }));
            }
            ReadRequest::Closed | ReadRequest::Stopping => return Ok(()),
            ReadRequest::Error(err) => return Err(err),
        }
    }

    // Group members by owning shard, keeping each one's original index.
    let mut responses: Vec<Option<Response>> = (0..members.len()).map(|_| None).collect();
    let mut groups: Vec<(u64, Vec<usize>)> = Vec::new();
    for (index, member) in members.iter().enumerate() {
        match member {
            Ok(Request::Annotate { netlist, .. }) => {
                match shared.topology.route(netlist_key(netlist)) {
                    Some((shard, _)) => match groups.iter_mut().find(|(id, _)| *id == shard) {
                        Some((_, indices)) => indices.push(index),
                        None => groups.push((shard, vec![index])),
                    },
                    None => {
                        responses[index] = Some(Response::Err {
                            code: SHARD_UNAVAILABLE.to_string(),
                            message: "fleet has no shards; retry_after_ms=1000".to_string(),
                        });
                    }
                }
            }
            Ok(_) => unreachable!("members hold only Annotate"),
            Err(response) => responses[index] = Some(response.clone()),
        }
    }

    // Phase 1: admit every sub-batch on its shard without awaiting replies.
    let mut sent: Vec<(u64, Vec<usize>)> = Vec::new();
    for (shard, indices) in groups {
        let retry_after = shared
            .topology
            .get(shard)
            .map(|s| s.retry_after)
            .unwrap_or(Duration::from_millis(500));
        let client = match upstream(conn, shared, shard) {
            Ok(client) => client,
            Err(response) => {
                for &index in &indices {
                    responses[index] = Some(response.clone());
                }
                continue;
            }
        };
        let mut admit = || -> Result<(), gana_serve::ClientError> {
            client.send_request(&Request::Batch(indices.len()))?;
            for &index in &indices {
                let Ok(request) = &members[index] else {
                    unreachable!("grouped members are Ok");
                };
                client.send_request(request)?;
            }
            Ok(())
        };
        match admit() {
            Ok(()) => sent.push((shard, indices)),
            Err(err) => {
                let response = unavailable(shard, retry_after, &err.to_string());
                conn.forget_shard(shard);
                for &index in &indices {
                    responses[index] = Some(response.clone());
                }
            }
        }
    }

    // Phase 2: collect every shard's replies (in the order its members
    // were sent) and slot them back into the client's order.
    for (shard, indices) in sent {
        let retry_after = shared
            .topology
            .get(shard)
            .map(|s| s.retry_after)
            .unwrap_or(Duration::from_millis(500));
        let mut failed = false;
        for (position, &index) in indices.iter().enumerate() {
            if failed {
                responses[index] = Some(unavailable(shard, retry_after, "reply stream lost"));
                continue;
            }
            let client = conn.upstreams.get_mut(&shard).expect("admitted above");
            match client.read_reply() {
                Ok(response) => responses[index] = Some(response),
                Err(err) => {
                    failed = true;
                    responses[index] = Some(unavailable(
                        shard,
                        retry_after,
                        &format!("after {position} replies: {err}"),
                    ));
                }
            }
        }
        if failed {
            conn.forget_shard(shard);
        }
    }

    for response in responses {
        transport.write_response(&response.expect("every member answered"))?;
    }
    Ok(())
}
