//! Process supervision for a fleet of engine shards.
//!
//! A [`Cluster`] spawns one `gana serve` child per shard, each with its
//! own snapshot directory under the cluster's snapshot root, then watches
//! them from a monitor thread:
//!
//! * **crash** — the child exited ([`std::process::Child::try_wait`]);
//! * **hang** — the child is alive but stops answering deadline-bounded
//!   binary ping frames for several consecutive probes; it is SIGKILLed
//!   and treated as crashed.
//!
//! Either way the slot is respawned with the *same* snapshot directory —
//! the daemon warm-starts from its last snapshot, so the shard comes back
//! with its cached regions and pipeline intact — and the shared
//! [`Topology`] is updated in place: the ring id never changes across a
//! restart (zero key movement), only the address and health flip.
//!
//! Planned shutdown replays the drain protocol instead: a `shutdown` wire
//! request per shard (drains in-flight work and writes the drain-time
//! snapshot), then SIGTERM, then SIGKILL as escalating fallbacks.

use crate::ring::Ring;
use crate::sys;
use crate::topology::Topology;
use gana_serve::client::Client;
use parking_lot::Mutex;
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Name of the snapshot file inside each shard's snapshot directory
/// (mirrors the `gana serve --snapshot-dir` convention).
pub const SNAPSHOT_FILE: &str = "engine.gsnap";

/// How to launch one shard daemon. The supervisor appends
/// `--addr <ip:port>` and `--snapshot-dir <dir>` per shard.
#[derive(Debug, Clone)]
pub struct ShardCommand {
    /// Executable to run (e.g. the `gana` binary).
    pub program: PathBuf,
    /// Leading arguments (e.g. `["serve", "--workers", "1"]`).
    pub args: Vec<String>,
}

impl ShardCommand {
    fn spawn(&self, addr: SocketAddr, snapshot_dir: &PathBuf) -> io::Result<Child> {
        Command::new(&self.program)
            .args(&self.args)
            .arg("--addr")
            .arg(addr.to_string())
            .arg("--snapshot-dir")
            .arg(snapshot_dir)
            .stdin(Stdio::null())
            .spawn()
    }
}

/// Fleet sizing and health-check tuning.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// How many shards to launch.
    pub shards: usize,
    /// Root directory; shard `i` gets `snapshot_root/shard-<i>`.
    pub snapshot_root: PathBuf,
    /// How to launch each shard daemon.
    pub command: ShardCommand,
    /// Optional snapshot file copied into each shard directory that does
    /// not already have one, so cold shards boot with a trained model.
    pub seed_snapshot: Option<PathBuf>,
    /// Pause between monitor ticks.
    pub ping_interval: Duration,
    /// Deadline for one health-check ping round trip.
    pub ping_timeout: Duration,
    /// Consecutive failed pings before a live child is declared hung.
    pub ping_failures: u32,
    /// How long a (re)spawned shard may take to answer its first ping.
    pub boot_timeout: Duration,
}

impl ClusterConfig {
    /// Defaults tuned for local fleets: 200ms probe cadence, 2s ping
    /// deadline, 3 strikes, 30s boot budget.
    pub fn new(shards: usize, snapshot_root: impl Into<PathBuf>, command: ShardCommand) -> Self {
        ClusterConfig {
            shards,
            snapshot_root: snapshot_root.into(),
            command,
            seed_snapshot: None,
            ping_interval: Duration::from_millis(200),
            ping_timeout: Duration::from_secs(2),
            ping_failures: 3,
            boot_timeout: Duration::from_secs(30),
        }
    }
}

struct Slot {
    id: u64,
    snapshot_dir: PathBuf,
    addr: SocketAddr,
    /// `None` means "not running": crashed, hung-and-killed, or failed to
    /// boot. The monitor respawns any such slot on its next tick.
    child: Option<Child>,
    failures: u32,
    restarts: u64,
}

struct ClusterInner {
    config: ClusterConfig,
    topology: Arc<Topology>,
    slots: Mutex<Vec<Slot>>,
    stop: AtomicBool,
    next_id: AtomicU64,
}

/// A running fleet: children + monitor thread + shared topology.
pub struct Cluster {
    inner: Arc<ClusterInner>,
    monitor: Mutex<Option<std::thread::JoinHandle<()>>>,
}

/// Grabs a free ephemeral port. The listener is dropped before the child
/// binds, which is racy in principle; in practice collisions are rare and
/// a failed bind surfaces as a boot failure, which the monitor retries on
/// a fresh port.
fn free_port() -> io::Result<SocketAddr> {
    TcpListener::bind("127.0.0.1:0")?.local_addr()
}

fn seed_dir(config: &ClusterConfig, dir: &PathBuf) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    if let Some(seed) = &config.seed_snapshot {
        let target = dir.join(SNAPSHOT_FILE);
        if !target.exists() {
            std::fs::copy(seed, &target)?;
        }
    }
    Ok(())
}

/// Deadline-bounded liveness probe: fresh connection, binary ping frame,
/// bounded reads/writes throughout.
fn probe(addr: SocketAddr, timeout: Duration) -> bool {
    let Ok(stream) = std::net::TcpStream::connect_timeout(&addr, timeout) else {
        return false;
    };
    let Ok(mut client) = Client::from_stream_binary(stream) else {
        return false;
    };
    if client.set_io_timeout(Some(timeout)).is_err() {
        return false;
    }
    client.ping().is_ok()
}

/// Waits for a freshly spawned shard to answer its first ping.
fn wait_for_boot(child: &mut Child, addr: SocketAddr, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if matches!(child.try_wait(), Ok(Some(_)) | Err(_)) {
            return false; // died during boot
        }
        if probe(addr, Duration::from_millis(500)) {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

impl ClusterInner {
    /// (Re)spawns `slot` on a fresh port and flips the topology when it
    /// answers pings. On failure the slot stays `None` and down; the next
    /// monitor tick retries.
    fn respawn(&self, slot: &mut Slot) {
        let addr = match free_port() {
            Ok(addr) => addr,
            Err(err) => {
                eprintln!("[gana-shard] shard {}: no free port: {err}", slot.id);
                return;
            }
        };
        if let Err(err) = seed_dir(&self.config, &slot.snapshot_dir) {
            eprintln!("[gana-shard] shard {}: snapshot dir: {err}", slot.id);
            return;
        }
        let mut child = match self.config.command.spawn(addr, &slot.snapshot_dir) {
            Ok(child) => child,
            Err(err) => {
                eprintln!("[gana-shard] shard {}: spawn: {err}", slot.id);
                return;
            }
        };
        if !wait_for_boot(&mut child, addr, self.config.boot_timeout) {
            eprintln!("[gana-shard] shard {}: did not boot on {addr}", slot.id);
            let _ = child.kill();
            let _ = child.wait();
            return;
        }
        slot.addr = addr;
        slot.child = Some(child);
        slot.failures = 0;
        self.topology.set_addr(slot.id, addr);
        self.topology
            .set_up(slot.id, true, Duration::from_millis(500));
    }

    /// One monitor pass over every slot.
    fn tick(&self) {
        let mut slots = self.slots.lock();
        for slot in slots.iter_mut() {
            if self.stop.load(Ordering::SeqCst) {
                return;
            }
            if let Some(child) = &mut slot.child {
                if let Ok(Some(status)) = child.try_wait() {
                    eprintln!(
                        "[gana-shard] shard {} exited ({status}); warm-restarting",
                        slot.id
                    );
                    slot.child = None;
                } else if probe(slot.addr, self.config.ping_timeout) {
                    slot.failures = 0;
                } else {
                    slot.failures += 1;
                    if slot.failures >= self.config.ping_failures {
                        eprintln!(
                            "[gana-shard] shard {} hung ({} failed pings); killing",
                            slot.id, slot.failures
                        );
                        let _ = child.kill();
                        let _ = child.wait();
                        slot.child = None;
                    }
                }
            }
            if slot.child.is_none() {
                self.topology
                    .set_up(slot.id, false, self.restart_estimate());
                slot.restarts += 1;
                self.respawn(slot);
            }
        }
    }

    /// What the router should tell clients: roughly one boot.
    fn restart_estimate(&self) -> Duration {
        self.config.boot_timeout.min(Duration::from_secs(2))
    }

    /// Drains one shard: wire `shutdown` (drain + drain-time snapshot),
    /// then SIGTERM (same drain path via the daemon's signal handler),
    /// then SIGKILL.
    fn drain(&self, slot: &mut Slot) {
        let Some(mut child) = slot.child.take() else {
            return;
        };
        let polite = Client::connect_binary(slot.addr)
            .and_then(|mut client| {
                client.set_io_timeout(Some(Duration::from_secs(10)))?;
                client.shutdown()
            })
            .is_ok();
        let deadline = Duration::from_secs(if polite { 10 } else { 5 });
        if wait_exit(&mut child, deadline) {
            return;
        }
        sys::send_signal(child.id(), sys::SIGTERM);
        if wait_exit(&mut child, Duration::from_secs(5)) {
            return;
        }
        let _ = child.kill();
        let _ = child.wait();
    }
}

/// Polls `try_wait` until the child exits or `deadline` passes.
fn wait_exit(child: &mut Child, deadline: Duration) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        match child.try_wait() {
            Ok(Some(_)) | Err(_) => return true,
            Ok(None) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
    false
}

impl Cluster {
    /// Launches the fleet: creates shard snapshot directories, spawns one
    /// daemon per shard, waits for each to answer pings, and starts the
    /// health monitor. Fails if any shard cannot boot.
    pub fn launch(config: ClusterConfig) -> io::Result<Cluster> {
        let shards = config.shards.max(1);
        let topology = Arc::new(Topology::new([]));
        let inner = Arc::new(ClusterInner {
            config,
            topology,
            slots: Mutex::new(Vec::new()),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(shards as u64),
        });
        {
            let mut slots = inner.slots.lock();
            for id in 0..shards as u64 {
                let snapshot_dir = inner.config.snapshot_root.join(format!("shard-{id}"));
                let mut slot = Slot {
                    id,
                    snapshot_dir,
                    addr: "127.0.0.1:0".parse().expect("literal addr"),
                    child: None,
                    failures: 0,
                    restarts: 0,
                };
                // Register first so respawn's topology writes land, then
                // mark down until the boot ping succeeds.
                inner.topology.add(id, slot.addr);
                inner.topology.set_up(id, false, inner.restart_estimate());
                inner.respawn(&mut slot);
                if slot.child.is_none() {
                    // Boot failure is fatal at launch (config error, bad
                    // snapshot): tear down what already started.
                    for started in slots.iter_mut() {
                        inner.drain(started);
                    }
                    return Err(io::Error::other(format!("shard {id} failed to boot")));
                }
                slots.push(slot);
            }
        }
        let monitor_inner = Arc::clone(&inner);
        let monitor = std::thread::Builder::new()
            .name("gana-shard-monitor".to_string())
            .spawn(move || {
                while !monitor_inner.stop.load(Ordering::SeqCst) {
                    monitor_inner.tick();
                    std::thread::sleep(monitor_inner.config.ping_interval);
                }
            })?;
        Ok(Cluster {
            inner,
            monitor: Mutex::new(Some(monitor)),
        })
    }

    /// The fleet view to hand to [`crate::router::serve_router`].
    pub fn topology(&self) -> Arc<Topology> {
        Arc::clone(&self.inner.topology)
    }

    /// How many times a shard has been (re)started beyond its first boot.
    pub fn restarts(&self, id: u64) -> Option<u64> {
        self.inner
            .slots
            .lock()
            .iter()
            .find(|slot| slot.id == id)
            .map(|slot| slot.restarts)
    }

    /// The OS pid of a shard's current child process, if running.
    pub fn pid(&self, id: u64) -> Option<u32> {
        self.inner
            .slots
            .lock()
            .iter()
            .find(|slot| slot.id == id)
            .and_then(|slot| slot.child.as_ref().map(Child::id))
    }

    /// The current listen address of a shard, if known.
    pub fn addr(&self, id: u64) -> Option<SocketAddr> {
        self.inner.topology.get(id).map(|status| status.addr)
    }

    /// Adds a shard to the fleet: new id, new snapshot directory, spawn,
    /// boot-wait, then ring join (moving only the keys the ring assigns to
    /// the newcomer). Returns the new shard id.
    pub fn add_shard(&self) -> io::Result<u64> {
        let id = self.inner.next_id.fetch_add(1, Ordering::SeqCst);
        let snapshot_dir = self.inner.config.snapshot_root.join(format!("shard-{id}"));
        let mut slot = Slot {
            id,
            snapshot_dir,
            addr: "127.0.0.1:0".parse().expect("literal addr"),
            child: None,
            failures: 0,
            restarts: 0,
        };
        self.inner.topology.add(id, slot.addr);
        self.inner
            .topology
            .set_up(id, false, self.inner.restart_estimate());
        self.inner.respawn(&mut slot);
        if slot.child.is_none() {
            self.inner.topology.remove(id);
            return Err(io::Error::other(format!("shard {id} failed to boot")));
        }
        self.inner.slots.lock().push(slot);
        Ok(id)
    }

    /// Removes a shard: takes it off the ring first (its keys move to
    /// their ring neighbors; new requests route around it immediately),
    /// then drains the daemon.
    pub fn remove_shard(&self, id: u64) -> bool {
        let mut slots = self.inner.slots.lock();
        let Some(index) = slots.iter().position(|slot| slot.id == id) else {
            return false;
        };
        self.inner.topology.remove(id);
        let mut slot = slots.remove(index);
        drop(slots);
        self.inner.drain(&mut slot);
        true
    }

    /// Planned fleet shutdown: stop the monitor, then drain every shard
    /// (wire shutdown → SIGTERM → SIGKILL). Each daemon writes its
    /// drain-time snapshot, so the whole fleet can warm-restart.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(monitor) = self.monitor.lock().take() {
            let _ = monitor.join();
        }
        let mut slots = self.inner.slots.lock();
        for slot in slots.iter_mut() {
            self.inner
                .topology
                .set_up(slot.id, false, Duration::from_secs(1));
            self.inner.drain(slot);
        }
    }
}

impl Drop for Cluster {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// A static (unsupervised) fleet description for tests and benches: build
/// a [`Topology`] straight from known addresses.
pub fn static_topology(shards: impl IntoIterator<Item = (u64, SocketAddr)>) -> Arc<Topology> {
    Arc::new(Topology::new(shards))
}

/// Exposed for documentation: a shard's keys under a ring of `n` shards.
/// (Convenience wrapper so operators can predict placement offline.)
pub fn owner_of(key: u128, shard_ids: &[u64]) -> Option<u64> {
    let mut ring = Ring::default();
    for &id in shard_ids {
        ring.add(id);
    }
    ring.route(key)
}
