//! Minimal Unix signal plumbing: a SIGTERM/SIGINT flag and `kill(2)`.
//!
//! The supervisor needs to send SIGTERM/SIGKILL to shard children, and
//! `gana serve` needs to notice SIGTERM so a supervisor-initiated stop
//! drains (and snapshots) instead of dropping work. The repository carries
//! no libc-style dependency, so the two syscalls are declared directly —
//! this is the one crate in the workspace that does not forbid `unsafe`.
//! On non-Unix targets everything degrades to a no-op.

/// SIGTERM: the polite stop a supervisor sends first.
pub const SIGTERM: i32 = 15;
/// SIGKILL: the unconditional stop for a hung process.
pub const SIGKILL: i32 = 9;

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" {
        fn signal(signum: i32, handler: usize) -> usize;
        fn kill(pid: i32, sig: i32) -> i32;
    }

    const SIGINT: i32 = 2;

    extern "C" fn on_term(_sig: i32) {
        // A relaxed store to a static atomic is async-signal-safe.
        TERM.store(true, Ordering::Relaxed);
    }

    pub fn install_term_handler() {
        let handler = on_term as extern "C" fn(i32) as usize;
        unsafe {
            signal(super::SIGTERM, handler);
            signal(SIGINT, handler);
        }
    }

    pub fn term_requested() -> bool {
        TERM.load(Ordering::Relaxed)
    }

    pub fn send_signal(pid: u32, sig: i32) -> bool {
        pid <= i32::MAX as u32 && unsafe { kill(pid as i32, sig) } == 0
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install_term_handler() {}

    pub fn term_requested() -> bool {
        false
    }

    pub fn send_signal(_pid: u32, _sig: i32) -> bool {
        false
    }
}

/// Installs a handler that records SIGTERM/SIGINT in a process-wide flag
/// (read with [`term_requested`]). Idempotent; no-op off Unix.
pub fn install_term_handler() {
    imp::install_term_handler()
}

/// True once SIGTERM or SIGINT has been received since
/// [`install_term_handler`].
pub fn term_requested() -> bool {
    imp::term_requested()
}

/// Sends `sig` to `pid`. Returns false if the signal could not be sent
/// (dead pid, permissions, non-Unix platform).
pub fn send_signal(pid: u32, sig: i32) -> bool {
    imp::send_signal(pid, sig)
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    #[test]
    fn signal_zero_probes_own_liveness() {
        // kill(pid, 0) performs permission/existence checks only — a safe
        // way to exercise the FFI path against our own live process.
        assert!(send_signal(std::process::id(), 0));
        assert!(!term_requested());
    }
}
