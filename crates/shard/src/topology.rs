//! The live fleet view shared between router and supervisor.
//!
//! A [`Topology`] owns the consistent-hash [`Ring`] plus, per shard, the
//! current listen address and health. The router reads it on every request
//! (`route`), the supervisor writes it on restart (`set_addr`, `set_up`)
//! and on fleet resize (`add`, `remove`). Restarting a shard keeps its ring
//! id — the supervisor only swaps the address — so a warm restart moves
//! zero keys; only explicit `add`/`remove` rebalance the ring, and those
//! move only the bounded slice the ring guarantees.

use crate::ring::Ring;
use parking_lot::RwLock;
use std::collections::HashMap;
use std::net::SocketAddr;
use std::time::Duration;

/// One shard as the router sees it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStatus {
    /// Where the shard's daemon currently listens (changes on restart).
    pub addr: SocketAddr,
    /// False while the shard is down or restarting.
    pub up: bool,
    /// How long clients should wait before retrying a request that hit
    /// this shard while it was down (the supervisor's restart estimate).
    pub retry_after: Duration,
}

struct Inner {
    ring: Ring,
    shards: HashMap<u64, ShardStatus>,
}

/// Shared, mutable fleet state: the ring plus per-shard address + health.
pub struct Topology {
    inner: RwLock<Inner>,
}

impl Topology {
    /// Builds a topology over `(shard id, address)` pairs, all initially up.
    pub fn new(shards: impl IntoIterator<Item = (u64, SocketAddr)>) -> Topology {
        let topology = Topology {
            inner: RwLock::new(Inner {
                ring: Ring::default(),
                shards: HashMap::new(),
            }),
        };
        for (id, addr) in shards {
            topology.add(id, addr);
        }
        topology
    }

    /// Routes a key to `(shard id, status)`. `None` on an empty fleet.
    pub fn route(&self, key: u128) -> Option<(u64, ShardStatus)> {
        let inner = self.inner.read();
        let id = inner.ring.route(key)?;
        inner.shards.get(&id).map(|status| (id, *status))
    }

    /// The status of one shard.
    pub fn get(&self, id: u64) -> Option<ShardStatus> {
        self.inner.read().shards.get(&id).copied()
    }

    /// Sorted ids of all shards on the ring.
    pub fn shard_ids(&self) -> Vec<u64> {
        self.inner.read().ring.shards()
    }

    /// Number of shards on the ring.
    pub fn len(&self) -> usize {
        self.inner.read().ring.len()
    }

    /// True when no shard is on the ring.
    pub fn is_empty(&self) -> bool {
        self.inner.read().ring.is_empty()
    }

    /// Adds a shard (rebalancing the ring; only keys landing on the new
    /// shard move). No-op if the id is already present.
    pub fn add(&self, id: u64, addr: SocketAddr) {
        let mut inner = self.inner.write();
        inner.ring.add(id);
        inner.shards.entry(id).or_insert(ShardStatus {
            addr,
            up: true,
            retry_after: Duration::from_millis(500),
        });
    }

    /// Removes a shard; only the removed shard's keys move, each to the
    /// neighbor that already owned the next ring arc.
    pub fn remove(&self, id: u64) {
        let mut inner = self.inner.write();
        inner.ring.remove(id);
        inner.shards.remove(&id);
    }

    /// Points an existing shard id at a new address (warm restart: the ring
    /// id is unchanged, so no keys move).
    pub fn set_addr(&self, id: u64, addr: SocketAddr) {
        if let Some(status) = self.inner.write().shards.get_mut(&id) {
            status.addr = addr;
        }
    }

    /// Marks a shard up or down; `retry_after` is what the router
    /// advertises to clients hitting the shard while it is down.
    pub fn set_up(&self, id: u64, up: bool, retry_after: Duration) {
        if let Some(status) = self.inner.write().shards.get_mut(&id) {
            status.up = up;
            status.retry_after = retry_after;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gana_incremental::routing::session_key;

    fn addr(port: u16) -> SocketAddr {
        format!("127.0.0.1:{port}").parse().unwrap()
    }

    #[test]
    fn restart_keeps_placement_but_changes_address() {
        let topology = Topology::new([(0, addr(9000)), (1, addr(9001))]);
        let key = session_key(7);
        let (shard, before) = topology.route(key).unwrap();
        topology.set_up(shard, false, Duration::from_millis(250));
        let (_, down) = topology.route(key).unwrap();
        assert!(!down.up);
        assert_eq!(down.retry_after, Duration::from_millis(250));
        topology.set_addr(shard, addr(9100));
        topology.set_up(shard, true, Duration::from_millis(500));
        let (after_shard, after) = topology.route(key).unwrap();
        assert_eq!(after_shard, shard, "restart must not move keys");
        assert_ne!(after.addr, before.addr);
        assert!(after.up);
    }

    #[test]
    fn add_and_remove_update_the_ring() {
        let topology = Topology::new([(0, addr(9000))]);
        assert_eq!(topology.len(), 1);
        topology.add(1, addr(9001));
        assert_eq!(topology.shard_ids(), vec![0, 1]);
        topology.remove(0);
        assert_eq!(topology.shard_ids(), vec![1]);
        assert_eq!(topology.route(session_key(1)).unwrap().0, 1);
        topology.remove(1);
        assert!(topology.is_empty());
        assert!(topology.route(session_key(1)).is_none());
    }
}
