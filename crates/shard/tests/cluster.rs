//! End-to-end fleet test: a supervised two-shard deployment behind the
//! consistent-hash router serves the full protocol surface — annotate,
//! batch, sessions, stats — byte-identical to a single direct engine, and
//! a `kill -9`'d shard is warm-restarted from its snapshot with zero
//! effect on traffic pinned to the surviving shard.

use gana_core::{Pipeline, Task};
use gana_datasets::{ota, ota_classes, rf, rf_classes, sc_filter};
use gana_gnn::{GcnConfig, GcnModel};
use gana_incremental::routing::netlist_key;
use gana_netlist::{write_spice, SpiceLibrary};
use gana_persist::EngineSnapshot;
use gana_primitives::PrimitiveLibrary;
use gana_serve::client::{Client, ClientError, RetryPolicy};
use gana_serve::{Annotation, Engine, JobRequest};
use gana_shard::supervisor::SNAPSHOT_FILE;
use gana_shard::{serve_router, sys, Cluster, ClusterConfig, RouterConfig, ShardCommand};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn pipeline_for(task: Task) -> Pipeline {
    let (num_classes, class_names): (usize, Vec<String>) = match task {
        Task::OtaBias => (
            2,
            ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        ),
        Task::Rf => (3, rf_classes::NAMES.iter().map(|s| s.to_string()).collect()),
    };
    let config = GcnConfig {
        conv_channels: vec![8, 8],
        filter_order: 4,
        fc_dim: 16,
        num_classes,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid config"),
        class_names,
        PrimitiveLibrary::standard().expect("library parses"),
        task,
    )
}

/// One netlist per circuit family, paired with its annotating task.
fn family_netlists() -> Vec<(&'static str, Task, String)> {
    let spice = |c| write_spice(&SpiceLibrary::new(c));
    vec![
        (
            "ota",
            Task::OtaBias,
            spice(
                ota::generate(ota::OtaSpec {
                    topology: ota::OtaTopology::Miller,
                    pmos_input: true,
                    bias: ota::BiasStyle::MirrorRef,
                    seed: 1,
                })
                .circuit,
            ),
        ),
        (
            "rf",
            Task::Rf,
            spice(
                rf::generate(rf::ReceiverSpec {
                    lna: rf::LnaKind::ALL[0],
                    mixer: rf::MixerKind::ALL[1],
                    osc: rf::OscKind::ALL[2],
                    seed: 2,
                })
                .circuit,
            ),
        ),
        ("sc-filter", Task::Rf, spice(sc_filter::generate(3).circuit)),
        (
            "phased-array",
            Task::Rf,
            spice(gana_datasets::phased_array::generate(1).circuit),
        ),
    ]
}

fn scratch_root() -> PathBuf {
    let root = std::env::temp_dir().join(format!("gana-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).expect("scratch root");
    root
}

/// Builds the fleet seed snapshot (both task pipelines) and the direct
/// reference engine the fleet must match byte-for-byte.
fn build_seed(path: &PathBuf) -> Engine {
    let engine = Engine::builder()
        .pipeline(pipeline_for(Task::OtaBias))
        .pipeline(pipeline_for(Task::Rf))
        .snapshot_path(path)
        .workers(1)
        .build();
    engine
        .save_snapshot()
        .expect("seed snapshot saves")
        .expect("snapshot path configured");
    engine
}

/// Annotates through the router, retrying `shard_unavailable` (a shard
/// mid-restart) with the server-provided backoff hint — the documented
/// client behavior during a warm restart.
fn annotate_retrying(
    client: &mut Client,
    netlist: &str,
    task: Task,
) -> Result<Annotation, ClientError> {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        match client.annotate(netlist, task, None) {
            Err(err) if Instant::now() < deadline => match err.retry_after_hint() {
                Some(wait) => std::thread::sleep(wait.min(Duration::from_millis(500))),
                None => return Err(err),
            },
            other => return other,
        }
    }
}

#[test]
fn two_shard_fleet_matches_direct_engine_and_survives_kill_9() {
    let root = scratch_root();
    let seed = root.join("seed.gsnap");
    let direct = build_seed(&seed);
    let inputs = family_netlists();
    let reference: Vec<Arc<Annotation>> = inputs
        .iter()
        .map(|(family, task, netlist)| {
            direct
                .submit(JobRequest::new(netlist.clone(), *task))
                .unwrap_or_else(|e| panic!("{family} admits: {e}"))
                .wait()
                .unwrap_or_else(|e| panic!("{family} annotates: {e}"))
        })
        .collect();
    direct.shutdown();

    // Launch the supervised fleet: two warm shards plus the router.
    let mut config = ClusterConfig::new(
        2,
        &root,
        ShardCommand {
            program: PathBuf::from(env!("CARGO_BIN_EXE_gana-shard-worker")),
            args: Vec::new(),
        },
    );
    config.seed_snapshot = Some(seed.clone());
    let cluster = Cluster::launch(config).expect("fleet boots");
    let router = serve_router(
        cluster.topology(),
        RouterConfig {
            addr: "127.0.0.1:0".to_string(),
            upstream_retry: RetryPolicy::default(),
        },
    )
    .expect("router binds");
    let addr = router.local_addr();

    // --- Parity: text and binary clients, annotate per family. ---
    let mut text = Client::connect(addr).expect("text client");
    let mut binary = Client::connect_binary(addr).expect("binary client");
    for ((family, task, netlist), want) in inputs.iter().zip(&reference) {
        let via_text = text
            .annotate(netlist, *task, None)
            .unwrap_or_else(|e| panic!("{family} via text: {e}"));
        let via_binary = binary
            .annotate(netlist, *task, None)
            .unwrap_or_else(|e| panic!("{family} via binary: {e}"));
        assert_eq!(&via_text, want.as_ref(), "{family}: text != direct engine");
        assert_eq!(
            &via_binary,
            want.as_ref(),
            "{family}: binary != direct engine"
        );
    }

    // --- Parity: one batch spanning both shards (the three rf-task
    // families), reassembled into the client's order. ---
    let rf_inputs: Vec<&(&str, Task, String)> =
        inputs.iter().filter(|(_, t, _)| *t == Task::Rf).collect();
    let batch_netlists: Vec<&str> = rf_inputs.iter().map(|(_, _, n)| n.as_str()).collect();
    let batched = binary
        .annotate_batch(&batch_netlists, Task::Rf, None)
        .expect("batch admits");
    for ((family, _, netlist), result) in rf_inputs.iter().zip(batched) {
        let got = result.unwrap_or_else(|e| panic!("{family} in batch: {e}"));
        let want = inputs
            .iter()
            .position(|(_, _, n)| n == netlist)
            .map(|i| &reference[i])
            .expect("input present");
        assert_eq!(&got, want.as_ref(), "{family}: batched != direct engine");
    }

    // --- Sessions: router-scoped ids, correct routing on update/close. ---
    let (ota_family, ota_task, ota_netlist) = &inputs[0];
    let (rf_family, rf_task, rf_netlist) = &inputs[1];
    let (first, first_annotation) = text
        .open(ota_netlist, *ota_task)
        .unwrap_or_else(|e| panic!("{ota_family} opens: {e}"));
    let (second, _) = text
        .open(rf_netlist, *rf_task)
        .unwrap_or_else(|e| panic!("{rf_family} opens: {e}"));
    assert_ne!(first, second, "router session ids are distinct");
    assert_eq!(&first_annotation, reference[0].as_ref());
    let updated = text.update(first, ota_netlist).expect("update routes");
    assert_eq!(
        &updated,
        reference[0].as_ref(),
        "identity update reproduces the baseline annotation"
    );
    text.close(second).expect("close routes");

    // --- Stats: the aggregate counts work from both shards, and the
    // per-shard view shows the whole fleet. ---
    let (per_shard, fleet) = binary.fleet_stats().expect("fleetstats answers");
    assert_eq!(per_shard.len(), 2, "both shards report");
    for (id, stats) in &per_shard {
        assert!(
            stats.completed > 0,
            "shard {id} saw no traffic; ring placement regressed"
        );
    }
    assert_eq!(
        fleet.completed,
        per_shard.iter().map(|(_, s)| s.completed).sum::<u64>(),
        "fleet aggregate sums shard counters"
    );
    let solo = binary.stats().expect("stats answers");
    assert_eq!(
        solo.completed, fleet.completed,
        "plain stats through the router is the fleet aggregate"
    );

    // --- Pick the victim: the shard owning the ota netlist. A session
    // pinned to the *other* shard must ride through the kill untouched. ---
    let topology = cluster.topology();
    let (victim, _) = topology
        .route(netlist_key(ota_netlist))
        .expect("ota netlist routes");
    let survivor = topology
        .shard_ids()
        .into_iter()
        .find(|&id| id != victim)
        .expect("two shards");
    // A survivor-owned netlist for background load during the restart.
    let survivor_index = inputs
        .iter()
        .position(|(_, _, netlist)| topology.route(netlist_key(netlist)).unwrap().0 == survivor)
        .expect("some family routes to the survivor");
    let survivor_input = &inputs[survivor_index];
    let restarts_before = cluster.restarts(victim).expect("victim tracked");

    // A session pinned to the survivor, opened before the kill: the
    // victim's restart must not disturb it in any way.
    let (survivor_session, _) = text
        .open(&survivor_input.2, survivor_input.1)
        .expect("survivor session opens");

    // Background load on the surviving shard across the kill window: every
    // request must succeed — a victim restart may not touch the survivor.
    let stop_load = Arc::new(AtomicBool::new(false));
    let load = {
        let stop = Arc::clone(&stop_load);
        let (_, task, netlist) = survivor_input.clone();
        let mut client = Client::connect(addr).expect("load client");
        std::thread::spawn(move || -> Result<u64, String> {
            let mut completed = 0u64;
            while !stop.load(Ordering::SeqCst) {
                client
                    .annotate(&netlist, task, None)
                    .map_err(|e| format!("survivor traffic failed mid-restart: {e}"))?;
                completed += 1;
            }
            Ok(completed)
        })
    };

    let pid = cluster.pid(victim).expect("victim runs");
    assert!(sys::send_signal(pid, sys::SIGKILL), "kill -9 delivered");

    // The broken upstream surfaces as a structured shard_unavailable with
    // a retry hint (never a hang) until the supervisor restores the shard.
    let error_deadline = Instant::now() + Duration::from_secs(60);
    let first_error = loop {
        assert!(
            Instant::now() < error_deadline,
            "victim kept answering with no restart recorded"
        );
        match binary.annotate(ota_netlist, *ota_task, None) {
            Err(err) => break Some(err),
            Ok(_) => {
                // The supervisor won the race and already restarted it.
                if cluster.restarts(victim).expect("tracked") > restarts_before {
                    break None;
                }
            }
        }
    };
    if let Some(err) = first_error {
        assert!(
            err.retry_after_hint().is_some(),
            "kill surfaced as {err}, want shard_unavailable with retry_after_ms"
        );
    }

    // Wait for the warm restart, then require byte-identical annotations
    // across all four families — the snapshot carried the whole model.
    let deadline = Instant::now() + Duration::from_secs(60);
    while cluster.restarts(victim).expect("tracked") == restarts_before
        || !topology.get(victim).expect("tracked").up
    {
        assert!(
            Instant::now() < deadline,
            "supervisor never restarted the shard"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    for ((family, task, netlist), want) in inputs.iter().zip(&reference) {
        let after = annotate_retrying(&mut binary, netlist, *task)
            .unwrap_or_else(|e| panic!("{family} after restart: {e}"));
        assert_eq!(
            &after,
            want.as_ref(),
            "{family}: post-restart annotation differs from pre-kill"
        );
    }

    // The surviving shard never dropped a request, and its session state
    // (opened before the kill) is fully intact.
    stop_load.store(true, Ordering::SeqCst);
    let load_completed = load
        .join()
        .expect("load thread joins")
        .expect("all survivor requests succeed");
    assert!(load_completed > 0, "load thread exercised the kill window");
    let survived = text
        .update(survivor_session, &survivor_input.2)
        .expect("survivor session still updates after the victim restart");
    assert_eq!(
        &survived,
        reference[survivor_index].as_ref(),
        "survivor session baseline intact"
    );

    // --- Planned drain: every shard writes its snapshot; both dirs must
    // hold a loadable warm-start image. ---
    drop(text);
    drop(binary);
    cluster.shutdown();
    router.shutdown();
    for id in [victim, survivor] {
        let path = root.join(format!("shard-{id}")).join(SNAPSHOT_FILE);
        EngineSnapshot::load(&path)
            .unwrap_or_else(|e| panic!("shard {id} drain snapshot unloadable: {e}"));
    }
    let _ = std::fs::remove_dir_all(&root);
}
