//! Property-based guarantees for the consistent-hash ring: adding or
//! removing a shard moves only the bounded slice of keys the ring
//! contract promises, routing is total and deterministic, and placement
//! is independent of the order shards joined.

use gana_incremental::routing::{netlist_key, session_key};
use gana_shard::Ring;
use proptest::prelude::*;
use proptest::test_runner::ProptestConfig;

/// Builds a distinct-id fleet from generated raw ids by offsetting
/// duplicates (the vendored proptest has no set strategy).
fn distinct(raw: Vec<u64>) -> Vec<u64> {
    let mut ids = raw;
    ids.sort_unstable();
    for i in 1..ids.len() {
        if ids[i] <= ids[i - 1] {
            ids[i] = ids[i - 1].wrapping_add(1);
        }
    }
    ids
}

/// A small fleet id set: distinct, arbitrary u64 ids.
fn shard_ids() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(any::<u64>(), 2..8).prop_map(distinct)
}

/// A key population mixing session keys and synthetic netlist keys so the
/// properties are exercised on the exact key derivations production uses.
fn keys(count: usize) -> Vec<u128> {
    (0..count as u64)
        .map(|i| {
            if i % 2 == 0 {
                session_key(i)
            } else {
                netlist_key(&format!("M{i} a{i} b c d NMOS\n.end\n"))
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// A joining shard only *receives* keys: any key whose owner changes
    /// must now be owned by the newcomer, and the number of moved keys is
    /// bounded near K/N (factor-3 slack absorbs hash-placement variance
    /// at 64 virtual nodes per shard).
    #[test]
    fn join_moves_bounded_keys_and_only_to_the_newcomer(
        ids in shard_ids(),
        raw_newcomer in any::<u64>(),
    ) {
        let newcomer = if ids.contains(&raw_newcomer) {
            raw_newcomer.wrapping_add(ids.len() as u64 + 1)
        } else {
            raw_newcomer
        };
        prop_assert!(!ids.contains(&newcomer));
        let before = Ring::new(ids.iter().copied());
        let mut after = before.clone();
        after.add(newcomer);

        let population = keys(512);
        let mut moved = 0usize;
        for &key in &population {
            let old = before.route(key).unwrap();
            let new = after.route(key).unwrap();
            if old != new {
                prop_assert_eq!(
                    new, newcomer,
                    "a join may only move keys onto the joining shard"
                );
                moved += 1;
            }
        }
        let fair_share = population.len() / after.len();
        prop_assert!(
            moved <= fair_share * 3,
            "join moved {} of {} keys; fair share is {}",
            moved,
            population.len(),
            fair_share
        );
    }

    /// A leaving shard only *donates* keys: every moved key belonged to the
    /// departed shard, so survivors keep their entire working set (warm
    /// caches, sessions, snapshots stay hot).
    #[test]
    fn leave_moves_only_the_departed_shards_keys(ids in shard_ids()) {
        let before = Ring::new(ids.iter().copied());
        let departed = ids[0];
        let mut after = before.clone();
        after.remove(departed);

        for &key in &keys(512) {
            let old = before.route(key).unwrap();
            let new = after.route(key).unwrap();
            prop_assert_ne!(new, departed, "removed shards receive nothing");
            if old != departed {
                prop_assert_eq!(
                    old, new,
                    "keys on surviving shards must not move on a leave"
                );
            }
        }
    }

    /// Placement depends only on the membership *set*, not the join order —
    /// a supervisor rebuilding its topology after a restart reproduces the
    /// exact same routing table.
    #[test]
    fn placement_is_join_order_independent(ids in shard_ids(), seed in any::<u64>()) {
        let forward = Ring::new(ids.iter().copied());
        // A cheap deterministic shuffle via key-sort.
        let mut scrambled = ids.clone();
        scrambled.sort_by_key(|id| id.wrapping_mul(seed | 1).rotate_left(17));
        let rebuilt = Ring::new(scrambled);
        prop_assert_eq!(&forward, &rebuilt);
        for &key in &keys(64) {
            prop_assert_eq!(forward.route(key), rebuilt.route(key));
        }
    }

    /// Routing is total (every key lands somewhere) and only ever lands on
    /// a member shard — over the production key derivations.
    #[test]
    fn routing_is_total_over_members(ids in shard_ids(), salt in any::<u64>()) {
        let ring = Ring::new(ids.iter().copied());
        for key in [session_key(salt), netlist_key(&format!("X{salt} a b sub\n.end\n"))] {
            let owner = ring.route(key).expect("non-empty rings route every key");
            prop_assert!(ids.contains(&owner));
        }
    }
}
