use crate::{CsrMatrix, Result, SparseError};
use serde::{Deserialize, Serialize};

/// A coordinate-format (triplet) sparse matrix builder.
///
/// COO is the natural format for assembling graph matrices (adjacency,
/// Laplacian) entry by entry; convert to [`CsrMatrix`] with
/// [`CooMatrix::to_csr`] for fast products. Duplicate entries are summed
/// during conversion, matching the behaviour of scipy's `coo_matrix`.
///
/// # Examples
///
/// ```
/// use gana_sparse::CooMatrix;
///
/// # fn main() -> Result<(), gana_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 1, 1.0)?;
/// coo.push(0, 1, 2.0)?; // duplicates are summed on conversion
/// let csr = coo.to_csr();
/// assert_eq!(csr.get(0, 1), 3.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CooMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl CooMatrix {
    /// Creates an empty `rows × cols` COO matrix.
    pub fn new(rows: usize, cols: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty COO matrix with capacity for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        CooMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Appends the triplet `(r, c, v)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if `(r, c)` is outside the
    /// declared shape.
    pub fn push(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        if r >= self.rows || c >= self.cols {
            return Err(SparseError::IndexOutOfBounds {
                index: (r, c),
                shape: (self.rows, self.cols),
            });
        }
        self.entries.push((r, c, v));
        Ok(())
    }

    /// Appends both `(r, c, v)` and `(c, r, v)`; convenient for undirected graphs.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::IndexOutOfBounds`] if either index is outside
    /// the declared shape.
    pub fn push_symmetric(&mut self, r: usize, c: usize, v: f64) -> Result<()> {
        self.push(r, c, v)?;
        if r != c {
            self.push(c, r, v)?;
        }
        Ok(())
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored triplets (duplicates counted individually).
    pub fn nnz(&self) -> usize {
        self.entries.len()
    }

    /// Iterates over the stored triplets in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        self.entries.iter().copied()
    }

    /// Converts to CSR, summing duplicate coordinates and dropping explicit
    /// zeros that result from cancellation.
    pub fn to_csr(&self) -> CsrMatrix {
        // Counting sort by row, then sort each row segment by column and
        // merge duplicates.
        let mut row_counts = vec![0usize; self.rows + 1];
        for &(r, _, _) in &self.entries {
            row_counts[r + 1] += 1;
        }
        for i in 0..self.rows {
            row_counts[i + 1] += row_counts[i];
        }
        let mut sorted: Vec<(usize, f64)> = vec![(0, 0.0); self.entries.len()];
        let mut cursor = row_counts.clone();
        let mut row_of = vec![0usize; self.entries.len()];
        for &(r, c, v) in &self.entries {
            let pos = cursor[r];
            sorted[pos] = (c, v);
            row_of[pos] = r;
            cursor[r] += 1;
        }

        let mut indptr = Vec::with_capacity(self.rows + 1);
        let mut indices = Vec::with_capacity(self.entries.len());
        let mut values = Vec::with_capacity(self.entries.len());
        indptr.push(0);
        for r in 0..self.rows {
            let seg = &mut sorted[row_counts[r]..row_counts[r + 1]];
            seg.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < seg.len() {
                let col = seg[i].0;
                let mut sum = 0.0;
                while i < seg.len() && seg[i].0 == col {
                    sum += seg[i].1;
                    i += 1;
                }
                if sum != 0.0 {
                    indices.push(col);
                    values.push(sum);
                }
            }
            indptr.push(indices.len());
        }
        CsrMatrix::from_raw_parts(self.rows, self.cols, indptr, indices, values)
            .expect("COO conversion produces well-formed CSR by construction")
    }
}

impl FromIterator<(usize, usize, f64)> for CooMatrix {
    /// Builds a COO matrix whose shape is the tight bounding box of the
    /// provided triplets.
    fn from_iter<I: IntoIterator<Item = (usize, usize, f64)>>(iter: I) -> Self {
        let entries: Vec<_> = iter.into_iter().collect();
        let rows = entries.iter().map(|&(r, _, _)| r + 1).max().unwrap_or(0);
        let cols = entries.iter().map(|&(_, c, _)| c + 1).max().unwrap_or(0);
        CooMatrix {
            rows,
            cols,
            entries,
        }
    }
}

impl Extend<(usize, usize, f64)> for CooMatrix {
    /// Extends with triplets, growing the shape if an index exceeds it.
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.rows = self.rows.max(r + 1);
            self.cols = self.cols.max(c + 1);
            self.entries.push((r, c, v));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_rejects_out_of_bounds() {
        let mut coo = CooMatrix::new(2, 2);
        let err = coo.push(2, 0, 1.0).expect_err("row out of range");
        assert!(matches!(err, SparseError::IndexOutOfBounds { .. }));
    }

    #[test]
    fn duplicates_are_summed_and_zeros_dropped() {
        let mut coo = CooMatrix::new(2, 2);
        coo.push(0, 0, 1.5).expect("in bounds");
        coo.push(0, 0, 2.5).expect("in bounds");
        coo.push(1, 1, 1.0).expect("in bounds");
        coo.push(1, 1, -1.0).expect("in bounds");
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 0), 4.0);
        assert_eq!(csr.nnz(), 1, "cancelled entry must be dropped");
    }

    #[test]
    fn push_symmetric_mirrors_off_diagonal() {
        let mut coo = CooMatrix::new(3, 3);
        coo.push_symmetric(0, 2, 1.0).expect("in bounds");
        coo.push_symmetric(1, 1, 5.0).expect("in bounds");
        let csr = coo.to_csr();
        assert_eq!(csr.get(0, 2), 1.0);
        assert_eq!(csr.get(2, 0), 1.0);
        assert_eq!(csr.get(1, 1), 5.0, "diagonal must not be doubled");
    }

    #[test]
    fn from_iterator_infers_shape() {
        let coo: CooMatrix = [(0, 0, 1.0), (3, 5, 2.0)].into_iter().collect();
        assert_eq!(coo.rows(), 4);
        assert_eq!(coo.cols(), 6);
        assert_eq!(coo.nnz(), 2);
    }

    #[test]
    fn extend_grows_shape() {
        let mut coo = CooMatrix::new(1, 1);
        coo.extend([(4, 2, 1.0)]);
        assert_eq!(coo.rows(), 5);
        assert_eq!(coo.cols(), 3);
    }

    #[test]
    fn empty_matrix_converts() {
        let coo = CooMatrix::new(3, 3);
        let csr = coo.to_csr();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.rows(), 3);
    }
}
