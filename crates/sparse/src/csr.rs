use crate::kernel::{self, Kernel};
use crate::{CooMatrix, DenseMatrix, Result, SparseError};
use gana_par::Parallelism;
use serde::{Deserialize, Serialize};

/// Smallest number of output rows a parallel spmm worker takes per claim;
/// below this the spawn/claim overhead dominates the row arithmetic.
const PAR_ROW_GRAIN: usize = 64;

/// A compressed-sparse-row matrix of `f64`.
///
/// CSR is the workhorse format for the GCN: the Chebyshev recurrence
/// repeatedly multiplies the rescaled Laplacian `L̂` (a CSR matrix) by dense
/// feature maps. Rows store column indices in strictly increasing order.
///
/// # Examples
///
/// ```
/// use gana_sparse::{CooMatrix, DenseMatrix};
///
/// # fn main() -> Result<(), gana_sparse::SparseError> {
/// let mut coo = CooMatrix::new(2, 2);
/// coo.push(0, 0, 2.0)?;
/// coo.push(1, 0, 1.0)?;
/// let a = coo.to_csr();
/// let y = a.mul_vec(&[3.0, 4.0])?;
/// assert_eq!(y, vec![6.0, 3.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl Default for CsrMatrix {
    /// The empty `0 × 0` matrix (`indptr = [0]`, preserving the CSR
    /// invariant `indptr.len() == rows + 1`).
    fn default() -> CsrMatrix {
        CsrMatrix {
            rows: 0,
            cols: 0,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw parts, validating the invariants.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidData`] if `indptr` has the wrong length,
    /// is not monotonically non-decreasing, references out-of-range data, or
    /// if any row's column indices are not strictly increasing and in bounds.
    pub fn from_raw_parts(
        rows: usize,
        cols: usize,
        indptr: Vec<usize>,
        indices: Vec<usize>,
        values: Vec<f64>,
    ) -> Result<Self> {
        if indptr.len() != rows + 1 {
            return Err(SparseError::InvalidData(format!(
                "indptr length {} does not match rows+1={}",
                indptr.len(),
                rows + 1
            )));
        }
        if indices.len() != values.len() {
            return Err(SparseError::InvalidData(format!(
                "indices length {} differs from values length {}",
                indices.len(),
                values.len()
            )));
        }
        if indptr.first() != Some(&0) || indptr.last() != Some(&indices.len()) {
            return Err(SparseError::InvalidData(
                "indptr must start at 0 and end at nnz".to_string(),
            ));
        }
        for w in indptr.windows(2) {
            if w[1] < w[0] {
                return Err(SparseError::InvalidData(
                    "indptr must be non-decreasing".to_string(),
                ));
            }
            let row = &indices[w[0]..w[1]];
            for pair in row.windows(2) {
                if pair[1] <= pair[0] {
                    return Err(SparseError::InvalidData(
                        "column indices must be strictly increasing within a row".to_string(),
                    ));
                }
            }
            if let Some(&last) = row.last() {
                if last >= cols {
                    return Err(SparseError::InvalidData(format!(
                        "column index {last} out of range for {cols} columns"
                    )));
                }
            }
        }
        Ok(CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        })
    }

    /// The `n × n` identity matrix in CSR form.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// A square matrix with `diag` on the diagonal (zeros are kept explicit).
    pub fn from_diagonal(diag: &[f64]) -> Self {
        let n = diag.len();
        CsrMatrix {
            rows: n,
            cols: n,
            indptr: (0..=n).collect(),
            indices: (0..n).collect(),
            values: diag.to_vec(),
        }
    }

    /// Stacks `blocks` along the diagonal into one block-diagonal matrix.
    ///
    /// The result has `Σ rows × Σ cols` with block `i` occupying the row
    /// and column ranges offset by the sizes of the blocks before it; all
    /// off-block entries are structurally zero. This is the fusion
    /// primitive of micro-batched inference: the rescaled Laplacians of
    /// independent graph samples combine into one operator, so a single
    /// sparse–dense sweep serves every sample in the batch. Assembly is
    /// direct CSR concatenation (row pointers shifted by the running nnz,
    /// column indices by the running column offset) — no COO round-trip —
    /// and each fused row keeps its source row's entries in the same
    /// strictly-increasing column order, so per-row accumulation in
    /// [`CsrMatrix::mul_dense`] is bit-identical to running the source
    /// block alone.
    ///
    /// An empty slice yields the empty `0 × 0` matrix.
    ///
    /// # Examples
    ///
    /// ```
    /// use gana_sparse::CsrMatrix;
    ///
    /// let a = CsrMatrix::identity(2);
    /// let b = CsrMatrix::from_diagonal(&[3.0]);
    /// let f = CsrMatrix::block_diag(&[&a, &b]);
    /// assert_eq!(f.shape(), (3, 3));
    /// assert_eq!(f.get(2, 2), 3.0);
    /// assert_eq!(f.get(2, 0), 0.0);
    /// ```
    pub fn block_diag(blocks: &[&CsrMatrix]) -> CsrMatrix {
        let mut out = CsrMatrix::default();
        CsrMatrix::block_diag_into(blocks, &mut out);
        out
    }

    /// [`CsrMatrix::block_diag`] writing into an existing matrix, reusing
    /// its heap storage — the steady-state form for callers that assemble
    /// a fused operator per request (a serving worker's workspace). The
    /// result is identical to `block_diag`; only allocation differs.
    pub fn block_diag_into(blocks: &[&CsrMatrix], out: &mut CsrMatrix) {
        out.rows = blocks.iter().map(|b| b.rows).sum();
        out.cols = blocks.iter().map(|b| b.cols).sum();
        let nnz = blocks.iter().map(|b| b.nnz()).sum();
        out.indptr.clear();
        out.indptr.reserve(out.rows + 1);
        out.indices.clear();
        out.indices.reserve(nnz);
        out.values.clear();
        out.values.reserve(nnz);
        out.indptr.push(0);
        let mut col_offset = 0;
        let mut nnz_offset = 0;
        for b in blocks {
            out.indptr
                .extend(b.indptr[1..].iter().map(|&p| p + nnz_offset));
            out.indices
                .extend(b.indices.iter().map(|&c| c + col_offset));
            out.values.extend_from_slice(&b.values);
            col_offset += b.cols;
            nnz_offset += b.nnz();
        }
    }

    /// Bytes of heap memory held by the matrix buffers (capacities, not
    /// lengths) — the accounting unit for workspace high-water stats.
    pub fn heap_bytes(&self) -> usize {
        self.indptr.capacity() * std::mem::size_of::<usize>()
            + self.indices.capacity() * std::mem::size_of::<usize>()
            + self.values.capacity() * std::mem::size_of::<f64>()
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (structurally non-zero) entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The row-pointer array (`rows + 1` entries, monotone, ending at nnz).
    pub fn indptr(&self) -> &[usize] {
        &self.indptr
    }

    /// Stored column indices in row-major order, strictly increasing
    /// within each row.
    pub fn indices(&self) -> &[usize] {
        &self.indices
    }

    /// Stored values, position-aligned with [`CsrMatrix::indices`].
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Returns the entry at `(r, c)`, which is `0.0` when not stored.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        let row = &self.indices[self.indptr[r]..self.indptr[r + 1]];
        match row.binary_search(&c) {
            Ok(pos) => self.values[self.indptr[r] + pos],
            Err(_) => 0.0,
        }
    }

    /// Iterates over `(col, value)` pairs of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_iter(&self, r: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        assert!(r < self.rows, "row {r} out of bounds");
        let range = self.indptr[r]..self.indptr[r + 1];
        self.indices[range.clone()]
            .iter()
            .copied()
            .zip(self.values[range].iter().copied())
    }

    /// Iterates over all `(row, col, value)` triplets in row-major order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        (0..self.rows).flat_map(move |r| self.row_iter(r).map(move |(c, v)| (r, c, v)))
    }

    /// Sparse matrix–vector product `y = A·x`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Result<Vec<f64>> {
        if x.len() != self.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: (x.len(), 1),
                op: "mul_vec",
            });
        }
        let mut y = vec![0.0; self.rows];
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for i in self.indptr[r]..self.indptr[r + 1] {
                acc += self.values[i] * x[self.indices[i]];
            }
            *out = acc;
        }
        Ok(y)
    }

    /// Sparse–dense product `Y = A·X` where `X` is dense.
    ///
    /// This is the hot path of the Chebyshev recurrence: cost `O(nnz · X.cols())`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, x.cols());
        self.mul_dense_into(x, &mut out)?;
        Ok(out)
    }

    /// [`CsrMatrix::mul_dense`] written into `out` (resized and zeroed),
    /// reusing `out`'s allocation. Runs the cache-blocked, register-tiled
    /// micro-kernel: the output row is cut into fixed-width column tiles
    /// (`COL_TILE` wide) held in unrolled register accumulators while the
    /// nnz loop streams over the row's stored entries. Every output element
    /// still receives its addends in exactly the naive kernel's order (the
    /// row's entries, first to last), so the result is **bit-identical** to
    /// [`CsrMatrix::mul_dense_into_naive`] — tiling only reorders work
    /// *across* independent output elements, never the summation *within*
    /// one.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense_into(&self, x: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if x.rows() != self.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: x.shape(),
                op: "mul_dense",
            });
        }
        let cols = x.cols();
        out.resize(self.rows, cols);
        self.spmm_rows_tiled(kernel::active(), 0..self.rows, x, out.as_mut_slice());
        Ok(())
    }

    /// [`CsrMatrix::mul_dense_into`] run with an explicitly chosen kernel
    /// instead of the process-wide [`kernel::active`] selection — the entry
    /// point the byte-identity proptests and the `spmm_phased_array_*`
    /// microbenches use to exercise both the scalar and SIMD paths in one
    /// process on any box. An unavailable kernel falls back to scalar.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense_into_with_kernel(
        &self,
        kernel: Kernel,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        if x.rows() != self.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: x.shape(),
                op: "mul_dense",
            });
        }
        let cols = x.cols();
        out.resize(self.rows, cols);
        self.spmm_rows_tiled(kernel, 0..self.rows, x, out.as_mut_slice());
        Ok(())
    }

    /// The straightforward nnz-outer scalar kernel, kept as the bit-for-bit
    /// reference the tiled [`CsrMatrix::mul_dense_into`] micro-kernel is
    /// proptested against. Not a hot path — prefer `mul_dense_into`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense_into_naive(&self, x: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if x.rows() != self.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: x.shape(),
                op: "mul_dense",
            });
        }
        out.resize(self.rows, x.cols());
        for r in 0..self.rows {
            for i in self.indptr[r]..self.indptr[r + 1] {
                let v = self.values[i];
                let src = x.row(self.indices[i]);
                let dst = out.row_mut(r);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        }
        Ok(())
    }

    /// Computes output rows `range` of `self · x` into `dst`, a zeroed
    /// row-major block of `range.len() × x.cols()`, with the given
    /// micro-kernel. Shared by the serial and row-parallel entry points so
    /// both run the identical tile loop.
    ///
    /// Per tile, [`kernel::COL_TILE`] accumulators start at the block's
    /// `0.0` and take the row's stored entries in index order — the same
    /// per-element addend sequence as the naive kernel — then store once.
    /// The ragged tail (`x.cols() % COL_TILE` columns) runs the same
    /// nnz-ordered accumulation with in-place adds on the zeroed
    /// destination. Every kernel variant honors the byte-identity contract
    /// documented in [`kernel`], so the choice never changes results.
    fn spmm_rows_tiled(
        &self,
        kernel: Kernel,
        range: std::ops::Range<usize>,
        x: &DenseMatrix,
        dst: &mut [f64],
    ) {
        kernel::spmm_rows(
            kernel,
            &self.indptr,
            &self.indices,
            &self.values,
            x.as_slice(),
            x.cols(),
            range,
            dst,
        );
    }

    /// Row-parallel [`CsrMatrix::mul_dense`] over the given thread budget.
    ///
    /// The output is tiled by whole rows, so every row's accumulation runs
    /// in exactly the serial kernel's order and the result is
    /// **bit-identical** to [`CsrMatrix::mul_dense`] at any thread count
    /// (see `gana-par`'s determinism contract). With a serial budget this
    /// delegates to the serial kernel directly.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense_par(&self, par: &Parallelism, x: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, x.cols());
        self.mul_dense_par_into(par, x, &mut out)?;
        Ok(out)
    }

    /// [`CsrMatrix::mul_dense_par`] written into `out` (resized and zeroed),
    /// reusing `out`'s allocation; byte-identical to the allocating kernels
    /// at any thread count.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.cols()`.
    pub fn mul_dense_par_into(
        &self,
        par: &Parallelism,
        x: &DenseMatrix,
        out: &mut DenseMatrix,
    ) -> Result<()> {
        if par.is_serial() || self.rows <= PAR_ROW_GRAIN {
            return self.mul_dense_into(x, out);
        }
        if x.rows() != self.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: x.shape(),
                op: "mul_dense_par",
            });
        }
        let cols = x.cols();
        let active = kernel::active();
        let blocks = par.map_chunks(self.rows, PAR_ROW_GRAIN, |range| {
            let mut block = vec![0.0; (range.end - range.start) * cols];
            self.spmm_rows_tiled(active, range.clone(), x, &mut block);
            (range, block)
        });
        out.resize(self.rows, cols);
        let flat = out.as_mut_slice();
        for (range, block) in blocks {
            flat[range.start * cols..range.end * cols].copy_from_slice(&block);
        }
        Ok(())
    }

    /// Transposed sparse–dense product `Y = Aᵀ·X` without materializing `Aᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `X.rows() != self.rows()`.
    pub fn transpose_mul_dense(&self, x: &DenseMatrix) -> Result<DenseMatrix> {
        if x.rows() != self.rows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: x.shape(),
                op: "transpose_mul_dense",
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, x.cols());
        for r in 0..self.rows {
            let src = x.row(r);
            for i in self.indptr[r]..self.indptr[r + 1] {
                let v = self.values[i];
                let dst = out.row_mut(self.indices[i]);
                for (d, &s) in dst.iter_mut().zip(src) {
                    *d += v * s;
                }
            }
        }
        Ok(out)
    }

    /// Returns `alpha·A + beta·B` as a new CSR matrix.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if the shapes differ.
    pub fn linear_combination(
        &self,
        alpha: f64,
        other: &CsrMatrix,
        beta: f64,
    ) -> Result<CsrMatrix> {
        if self.shape() != other.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "linear_combination",
            });
        }
        let mut coo = CooMatrix::with_capacity(self.rows, self.cols, self.nnz() + other.nnz());
        for (r, c, v) in self.iter() {
            coo.push(r, c, alpha * v)
                .expect("indices from a valid CSR are in bounds");
        }
        for (r, c, v) in other.iter() {
            coo.push(r, c, beta * v)
                .expect("indices from a valid CSR are in bounds");
        }
        Ok(coo.to_csr())
    }

    /// Returns `A` scaled by `s`.
    pub fn scale(&self, s: f64) -> CsrMatrix {
        let mut out = self.clone();
        for v in &mut out.values {
            *v *= s;
        }
        out
    }

    /// Returns the transpose as a new CSR matrix.
    pub fn transpose(&self) -> CsrMatrix {
        let mut coo = CooMatrix::with_capacity(self.cols, self.rows, self.nnz());
        for (r, c, v) in self.iter() {
            coo.push(c, r, v).expect("transposed indices are in bounds");
        }
        coo.to_csr()
    }

    /// Extracts the main diagonal (length `min(rows, cols)`).
    pub fn diagonal(&self) -> Vec<f64> {
        (0..self.rows.min(self.cols))
            .map(|i| self.get(i, i))
            .collect()
    }

    /// Row sums; for an adjacency matrix these are the vertex degrees.
    pub fn row_sums(&self) -> Vec<f64> {
        (0..self.rows)
            .map(|r| self.row_iter(r).map(|(_, v)| v).sum())
            .collect()
    }

    /// Converts to a dense matrix. Intended for tests and small graphs.
    pub fn to_dense(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.rows, self.cols);
        for (r, c, v) in self.iter() {
            out.set(r, c, v);
        }
        out
    }

    /// True if the matrix equals its transpose within `tol`.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        self.iter()
            .all(|(r, c, v)| (self.get(c, r) - v).abs() <= tol)
    }

    /// Extracts the square submatrix induced by `keep` (in the given order).
    ///
    /// Entry `(i, j)` of the result equals entry `(keep[i], keep[j])` of `self`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::NotSquare`] if the matrix is rectangular, or
    /// [`SparseError::IndexOutOfBounds`] if any index in `keep` is out of range.
    pub fn submatrix(&self, keep: &[usize]) -> Result<CsrMatrix> {
        if self.rows != self.cols {
            return Err(SparseError::NotSquare {
                shape: self.shape(),
            });
        }
        let mut position = vec![usize::MAX; self.rows];
        for (new, &old) in keep.iter().enumerate() {
            if old >= self.rows {
                return Err(SparseError::IndexOutOfBounds {
                    index: (old, old),
                    shape: self.shape(),
                });
            }
            position[old] = new;
        }
        let mut coo = CooMatrix::new(keep.len(), keep.len());
        for (new_r, &old_r) in keep.iter().enumerate() {
            for (old_c, v) in self.row_iter(old_r) {
                let new_c = position[old_c];
                if new_c != usize::MAX {
                    coo.push(new_r, new_c, v)
                        .expect("in bounds by construction");
                }
            }
        }
        Ok(coo.to_csr())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        // [ 1 0 2 ]
        // [ 0 0 3 ]
        // [ 4 5 0 ]
        let mut coo = CooMatrix::new(3, 3);
        for (r, c, v) in [
            (0, 0, 1.0),
            (0, 2, 2.0),
            (1, 2, 3.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
        ] {
            coo.push(r, c, v).expect("in bounds");
        }
        coo.to_csr()
    }

    #[test]
    fn get_returns_stored_and_zero_entries() {
        let a = sample();
        assert_eq!(a.get(0, 0), 1.0);
        assert_eq!(a.get(0, 1), 0.0);
        assert_eq!(a.get(2, 1), 5.0);
        assert_eq!(a.nnz(), 5);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let a = sample();
        let x = [1.0, 2.0, 3.0];
        let y = a.mul_vec(&x).expect("length matches");
        assert_eq!(y, vec![7.0, 9.0, 14.0]);
    }

    #[test]
    fn mul_vec_length_mismatch_is_error() {
        let a = sample();
        assert!(a.mul_vec(&[1.0]).is_err());
    }

    #[test]
    fn mul_dense_matches_dense_matmul() {
        let a = sample();
        let x = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[3.0, 2.0]]).expect("valid");
        let sparse_result = a.mul_dense(&x).expect("shapes match");
        let dense_result = a.to_dense().matmul(&x).expect("shapes match");
        assert_eq!(sparse_result, dense_result);
    }

    #[test]
    fn transpose_mul_dense_matches_explicit_transpose() {
        let a = sample();
        let x = DenseMatrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).expect("valid");
        let fused = a.transpose_mul_dense(&x).expect("shapes match");
        let explicit = a.transpose().mul_dense(&x).expect("shapes match");
        assert_eq!(fused, explicit);
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn linear_combination_cancels_to_empty() {
        let a = sample();
        let zero = a.linear_combination(1.0, &a, -1.0).expect("same shape");
        assert_eq!(zero.nnz(), 0);
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        assert_eq!(i.nnz(), 4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x).expect("length matches"), x.to_vec());
    }

    #[test]
    fn diagonal_and_row_sums() {
        let a = sample();
        assert_eq!(a.diagonal(), vec![1.0, 0.0, 0.0]);
        assert_eq!(a.row_sums(), vec![3.0, 3.0, 9.0]);
    }

    #[test]
    fn symmetry_check() {
        let a = sample();
        assert!(!a.is_symmetric(1e-12));
        let sym = a
            .linear_combination(1.0, &a.transpose(), 1.0)
            .expect("same shape");
        assert!(sym.is_symmetric(1e-12));
    }

    #[test]
    fn from_raw_parts_validates() {
        // Wrong indptr length.
        assert!(CsrMatrix::from_raw_parts(2, 2, vec![0, 1], vec![0], vec![1.0]).is_err());
        // Non-increasing column indices within a row.
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![1, 1], vec![1.0, 2.0]).is_err());
        // Column out of range.
        assert!(CsrMatrix::from_raw_parts(1, 1, vec![0, 1], vec![3], vec![1.0]).is_err());
        // Valid.
        assert!(CsrMatrix::from_raw_parts(1, 3, vec![0, 2], vec![0, 2], vec![1.0, 2.0]).is_ok());
    }

    #[test]
    fn submatrix_extracts_induced_block() {
        let a = sample();
        let sub = a.submatrix(&[2, 0]).expect("valid indices");
        // Rows/cols reordered: sub[0][1] = a[2][0] = 4.
        assert_eq!(sub.get(0, 1), 4.0);
        assert_eq!(sub.get(1, 1), 1.0);
        assert_eq!(sub.get(1, 0), 2.0); // a[0][2]
    }

    #[test]
    fn submatrix_rejects_bad_index() {
        let a = sample();
        assert!(a.submatrix(&[5]).is_err());
    }

    #[test]
    fn mul_dense_par_is_bit_identical_to_serial() {
        // Pseudo-random matrix big enough to exceed the parallel row grain
        // and split across several chunks.
        let n = 300;
        let mut state = 0x243f6a8885a308d3u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..5 {
                let c = (next() % n as u64) as usize;
                let v = (next() % 1000) as f64 / 37.0 - 13.0;
                coo.push(r, c, v).expect("in bounds");
            }
        }
        let a = coo.to_csr();
        let x = DenseMatrix::from_fn(n, 7, |i, j| ((i * 31 + j * 17) % 101) as f64 / 9.0);
        let serial = a.mul_dense(&x).expect("shapes match");
        for threads in [1, 2, 3, 8] {
            let par = Parallelism::new(threads);
            let parallel = a.mul_dense_par(&par, &x).expect("shapes match");
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn mul_dense_into_reuses_buffer_and_matches_fresh() {
        let a = sample();
        let x = DenseMatrix::from_rows(&[&[1.0, -1.0], &[2.0, 0.5], &[3.0, 2.0]]).expect("valid");
        let fresh = a.mul_dense(&x).expect("shapes match");
        let mut reused = DenseMatrix::filled(7, 1, 42.0);
        a.mul_dense_into(&x, &mut reused).expect("shapes match");
        assert_eq!(reused, fresh);
        let par = Parallelism::new(3);
        a.mul_dense_par_into(&par, &x, &mut reused)
            .expect("shapes match");
        assert_eq!(reused, fresh);
    }

    #[test]
    fn mul_dense_par_rejects_shape_mismatch() {
        let a = sample();
        let par = Parallelism::new(2);
        assert!(a.mul_dense_par(&par, &DenseMatrix::zeros(5, 2)).is_err());
    }

    #[test]
    fn scale_multiplies_values() {
        let a = sample().scale(2.0);
        assert_eq!(a.get(2, 1), 10.0);
    }

    #[test]
    fn block_diag_places_blocks_on_the_diagonal() {
        let a = sample();
        let b = CsrMatrix::from_diagonal(&[7.0, -2.0]);
        let f = CsrMatrix::block_diag(&[&a, &b]);
        assert_eq!(f.shape(), (5, 5));
        assert_eq!(f.nnz(), a.nnz() + b.nnz());
        for (r, c, v) in a.iter() {
            assert_eq!(f.get(r, c), v);
        }
        for (r, c, v) in b.iter() {
            assert_eq!(f.get(r + 3, c + 3), v);
        }
        assert_eq!(f.get(0, 3), 0.0);
        assert_eq!(f.get(4, 2), 0.0);
    }

    #[test]
    fn block_diag_of_nothing_is_empty() {
        let f = CsrMatrix::block_diag(&[]);
        assert_eq!(f.shape(), (0, 0));
        assert_eq!(f.nnz(), 0);
    }

    #[test]
    fn block_diag_mul_matches_per_block_products() {
        let a = sample();
        let b = CsrMatrix::identity(2);
        let f = CsrMatrix::block_diag(&[&a, &b]);
        let xa = DenseMatrix::from_fn(3, 4, |i, j| (i * 7 + j) as f64 / 3.0);
        let xb = DenseMatrix::from_fn(2, 4, |i, j| (i + j * 5) as f64 / 7.0);
        let stacked = xa.vstack(&xb).expect("same width");
        let fused = f.mul_dense(&stacked).expect("shapes match");
        let ya = a.mul_dense(&xa).expect("shapes match");
        let yb = b.mul_dense(&xb).expect("shapes match");
        assert_eq!(fused, ya.vstack(&yb).expect("same width"));
    }

    #[test]
    fn tiled_kernel_is_bit_identical_to_naive_across_widths() {
        let n = 97;
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            state >> 11
        };
        let mut coo = CooMatrix::new(n, n);
        for r in 0..n {
            for _ in 0..4 {
                let c = (next() % n as u64) as usize;
                let v = (next() % 1000) as f64 / 41.0 - 11.0;
                coo.push(r, c, v).expect("in bounds");
            }
        }
        let a = coo.to_csr();
        // Widths straddling the tile boundary: below, exact, ragged, multiple.
        for cols in [1, 7, 8, 9, 15, 16, 23, 64] {
            let x = DenseMatrix::from_fn(n, cols, |i, j| ((i * 31 + j * 17) % 103) as f64 / 9.0);
            let mut tiled = DenseMatrix::default();
            let mut naive = DenseMatrix::default();
            a.mul_dense_into(&x, &mut tiled).expect("shapes match");
            a.mul_dense_into_naive(&x, &mut naive)
                .expect("shapes match");
            assert_eq!(tiled, naive, "cols={cols}");
        }
    }
}
