use crate::kernel;
use crate::{Result, SparseError};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, Mul, Sub};

/// A row-major dense matrix of `f64`.
///
/// Used throughout the GNN for feature maps (`n × d`), layer weights
/// (`d_in × d_out`), and gradients. The representation is a flat `Vec<f64>`
/// indexed as `data[r * cols + c]`.
///
/// # Examples
///
/// ```
/// use gana_sparse::DenseMatrix;
///
/// # fn main() -> Result<(), gana_sparse::SparseError> {
/// let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let b = DenseMatrix::identity(2);
/// let c = a.matmul(&b)?;
/// assert_eq!(c, a);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a `rows × cols` matrix with every entry set to `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        DenseMatrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidData`] if the rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self> {
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(rows.len() * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(SparseError::InvalidData(format!(
                    "row {i} has length {}, expected {ncols}",
                    row.len()
                )));
            }
            data.extend_from_slice(row);
        }
        Ok(DenseMatrix {
            rows: rows.len(),
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::InvalidData`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(SparseError::InvalidData(format!(
                "flat data has length {}, expected {rows}*{cols}={}",
                data.len(),
                rows * cols
            )));
        }
        Ok(DenseMatrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DenseMatrix::zeros(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.set(r, c, f(r, c));
            }
        }
        m
    }

    /// Builds a single-column matrix from a slice.
    pub fn column_vector(values: &[f64]) -> Self {
        DenseMatrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Shape as `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c]
    }

    /// Sets the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] = v;
    }

    /// Adds `v` to the entry at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` or `c` is out of bounds.
    #[inline]
    pub fn add_at(&mut self, r: usize, c: usize, v: f64) {
        assert!(
            r < self.rows && c < self.cols,
            "index ({r}, {c}) out of bounds"
        );
        self.data[r * self.cols + c] += v;
    }

    /// Borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row {r} out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the underlying row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major data.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Reshapes the matrix to `rows × cols` and zeros every entry, reusing
    /// the existing allocation when it has enough capacity.
    ///
    /// This is the workspace-reuse primitive: repeated calls with varying
    /// shapes settle on the high-water allocation instead of reallocating
    /// per request.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` a copy of `src` (shape and contents), reusing the
    /// existing allocation when possible.
    pub fn copy_from(&mut self, src: &DenseMatrix) {
        self.rows = src.rows;
        self.cols = src.cols;
        self.data.clear();
        self.data.extend_from_slice(&src.data);
    }

    /// Matrix product `self · rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        self.matmul_into(rhs, &mut out)?;
        Ok(out)
    }

    /// Matrix product `self · rhs` written into `out` (resized and zeroed),
    /// reusing `out`'s allocation. The accumulation order is identical to
    /// [`DenseMatrix::matmul`], so results are byte-identical.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `self.cols() != rhs.rows()`.
    pub fn matmul_into(&self, rhs: &DenseMatrix, out: &mut DenseMatrix) -> Result<()> {
        if self.cols != rhs.rows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul",
            });
        }
        out.resize(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(())
    }

    /// Matrix product `selfᵀ · rhs` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `self.rows() != rhs.rows()`.
    pub fn transpose_matmul(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != rhs.rows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "transpose_matmul",
            });
        }
        let mut out = DenseMatrix::zeros(self.cols, rhs.cols);
        for k in 0..self.rows {
            let lhs_row = &self.data[k * self.cols..(k + 1) * self.cols];
            let rhs_row = &rhs.data[k * rhs.cols..(k + 1) * rhs.cols];
            for (i, &a) in lhs_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * rhs.cols..(i + 1) * rhs.cols];
                for (o, &b) in out_row.iter_mut().zip(rhs_row) {
                    *o += a * b;
                }
            }
        }
        Ok(out)
    }

    /// Matrix product `self · rhsᵀ` without materializing the transpose.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if `self.cols() != rhs.cols()`.
    pub fn matmul_transpose(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != rhs.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "matmul_transpose",
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, rhs.rows);
        for i in 0..self.rows {
            let lhs_row = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..rhs.rows {
                let rhs_row = &rhs.data[j * rhs.cols..(j + 1) * rhs.cols];
                let dot: f64 = lhs_row.iter().zip(rhs_row).map(|(a, b)| a * b).sum();
                out.data[i * rhs.rows + j] = dot;
            }
        }
        Ok(out)
    }

    /// Returns the transpose as a new matrix.
    pub fn transpose(&self) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn add_matrix(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, "add", |a, b| a + b)
    }

    /// Element-wise difference.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn sub_matrix(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, "sub", |a, b| a - b)
    }

    /// Element-wise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn hadamard(&self, rhs: &DenseMatrix) -> Result<DenseMatrix> {
        self.zip_with(rhs, "hadamard", |a, b| a * b)
    }

    fn zip_with(
        &self,
        rhs: &DenseMatrix,
        op: &'static str,
        f: impl Fn(f64, f64) -> f64,
    ) -> Result<DenseMatrix> {
        if self.shape() != rhs.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op,
            });
        }
        let data = self
            .data
            .iter()
            .zip(&rhs.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// In-place `self += alpha * rhs` (AXPY), run by the active SIMD
    /// kernel ([`crate::kernel::active`]); every kernel is bit-identical
    /// to the scalar loop.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn axpy(&mut self, alpha: f64, rhs: &DenseMatrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "axpy",
            });
        }
        kernel::axpy(kernel::active(), &mut self.data, alpha, &rhs.data);
        Ok(())
    }

    /// In-place fused `self = alpha * self + beta * rhs` — the Chebyshev
    /// combine step `T_k = 2·(L̂·T_{k−1}) − T_{k−2}` in a single sweep, run
    /// by the active SIMD kernel. Per element this is multiply, multiply,
    /// add, so the result is **bit-identical** to
    /// [`DenseMatrix::scale_in_place`]`(alpha)` followed by
    /// [`DenseMatrix::axpy`]`(beta, rhs)`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if shapes differ.
    pub fn scale_axpy(&mut self, alpha: f64, beta: f64, rhs: &DenseMatrix) -> Result<()> {
        if self.shape() != rhs.shape() {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: rhs.shape(),
                op: "scale_axpy",
            });
        }
        kernel::scale_axpy(kernel::active(), &mut self.data, alpha, beta, &rhs.data);
        Ok(())
    }

    /// Returns a copy with every entry multiplied by `s`.
    pub fn scale(&self, s: f64) -> DenseMatrix {
        self.map(|v| v * s)
    }

    /// Multiplies every entry by `s` in place.
    pub fn scale_in_place(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Returns a copy with `f` applied to every entry.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> DenseMatrix {
        DenseMatrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` to every entry in place.
    pub fn map_in_place(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Frobenius norm (root of the sum of squared entries).
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Sum of all entries.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Sums each column into a length-`cols` vector (used for bias gradients).
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, &v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Extracts the rows listed in `indices` into a new matrix (gather).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> DenseMatrix {
        let mut out = DenseMatrix::zeros(indices.len(), self.cols);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// [`DenseMatrix::gather_rows`] written into `out` (resized), reusing
    /// `out`'s allocation.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut DenseMatrix) {
        out.resize(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.row_mut(dst).copy_from_slice(self.row(src));
        }
    }

    /// Bytes of heap memory backing the matrix (capacity, not length) —
    /// the workspace high-water accounting unit.
    pub fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<f64>()
    }

    /// Stacks `self` on top of `other`.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if column counts differ.
    pub fn vstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.cols != other.cols {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "vstack",
            });
        }
        let mut data = self.data.clone();
        data.extend_from_slice(&other.data);
        Ok(DenseMatrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        })
    }

    /// Concatenates `self` and `other` side by side.
    ///
    /// # Errors
    ///
    /// Returns [`SparseError::ShapeMismatch`] if row counts differ.
    pub fn hstack(&self, other: &DenseMatrix) -> Result<DenseMatrix> {
        if self.rows != other.rows {
            return Err(SparseError::ShapeMismatch {
                left: self.shape(),
                right: other.shape(),
                op: "hstack",
            });
        }
        let mut out = DenseMatrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        Ok(out)
    }

    /// Index of the largest entry in row `r` (ties broken toward lower index).
    ///
    /// Returns `None` for a zero-column matrix.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_argmax(&self, r: usize) -> Option<usize> {
        let row = self.row(r);
        let mut best: Option<(usize, f64)> = None;
        for (i, &v) in row.iter().enumerate() {
            match best {
                Some((_, bv)) if v <= bv => {}
                _ => best = Some((i, v)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// True if any entry is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }
}

impl Default for DenseMatrix {
    fn default() -> Self {
        DenseMatrix::zeros(0, 0)
    }
}

impl fmt::Display for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{}", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            let row: Vec<String> = self
                .row(r)
                .iter()
                .take(8)
                .map(|v| format!("{v:.4}"))
                .collect();
            writeln!(
                f,
                "  [{}{}]",
                row.join(", "),
                if self.cols > 8 { ", …" } else { "" }
            )?;
        }
        if self.rows > 8 {
            writeln!(f, "  …")?;
        }
        Ok(())
    }
}

impl Add for &DenseMatrix {
    type Output = DenseMatrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`DenseMatrix::add_matrix`] for a fallible version.
    fn add(self, rhs: &DenseMatrix) -> DenseMatrix {
        self.add_matrix(rhs)
            .expect("matrix shapes must match for +")
    }
}

impl Sub for &DenseMatrix {
    type Output = DenseMatrix;

    /// # Panics
    ///
    /// Panics if shapes differ; use [`DenseMatrix::sub_matrix`] for a fallible version.
    fn sub(self, rhs: &DenseMatrix) -> DenseMatrix {
        self.sub_matrix(rhs)
            .expect("matrix shapes must match for -")
    }
}

impl Mul<f64> for &DenseMatrix {
    type Output = DenseMatrix;

    fn mul(self, s: f64) -> DenseMatrix {
        self.scale(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> DenseMatrix {
        DenseMatrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).expect("valid rows")
    }

    #[test]
    fn zeros_has_expected_shape_and_content() {
        let m = DenseMatrix::zeros(3, 2);
        assert_eq!(m.shape(), (3, 2));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn identity_multiplication_is_neutral() {
        let a = sample();
        let i3 = DenseMatrix::identity(3);
        assert_eq!(a.matmul(&i3).expect("shapes match"), a);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[&[7.0], &[8.0], &[9.0]]).expect("valid rows");
        let c = a.matmul(&b).expect("shapes match");
        assert_eq!(c.shape(), (2, 1));
        assert_eq!(c.get(0, 0), 1.0 * 7.0 + 2.0 * 8.0 + 3.0 * 9.0);
        assert_eq!(c.get(1, 0), 4.0 * 7.0 + 5.0 * 8.0 + 6.0 * 9.0);
    }

    #[test]
    fn matmul_shape_mismatch_is_an_error() {
        let a = sample();
        let err = a
            .matmul(&sample())
            .expect_err("3 cols vs 2 rows must not multiply");
        assert!(matches!(
            err,
            SparseError::ShapeMismatch { op: "matmul", .. }
        ));
    }

    #[test]
    fn transpose_round_trips() {
        let a = sample();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
        assert_eq!(a.transpose().get(2, 1), 6.0);
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit_transpose() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.5], &[2.0, -1.0]]).expect("valid rows");
        let fused = a.transpose_matmul(&b).expect("shapes match");
        let explicit = a.transpose().matmul(&b).expect("shapes match");
        assert_eq!(fused, explicit);
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[&[1.0, 0.0, 2.0], &[0.0, 1.0, -1.0]]).expect("valid");
        let fused = a.matmul_transpose(&b).expect("shapes match");
        let explicit = a.matmul(&b.transpose()).expect("shapes match");
        assert_eq!(fused, explicit);
    }

    #[test]
    fn elementwise_operations() {
        let a = sample();
        let sum = a.add_matrix(&a).expect("same shape");
        assert_eq!(sum.get(1, 2), 12.0);
        let diff = a.sub_matrix(&a).expect("same shape");
        assert_eq!(diff.frobenius_norm(), 0.0);
        let had = a.hadamard(&a).expect("same shape");
        assert_eq!(had.get(0, 1), 4.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = sample();
        let b = sample();
        a.axpy(2.0, &b).expect("same shape");
        assert_eq!(a.get(0, 0), 3.0);
    }

    #[test]
    fn scale_axpy_is_bitwise_equal_to_scale_then_axpy() {
        let a = DenseMatrix::from_fn(5, 9, |i, j| ((i * 13 + j * 7) % 29) as f64 / 3.0 - 4.0);
        let b = DenseMatrix::from_fn(5, 9, |i, j| ((i * 5 + j * 11) % 31) as f64 / 7.0 - 2.0);
        let mut two_pass = a.clone();
        two_pass.scale_in_place(2.0);
        two_pass.axpy(-1.0, &b).expect("same shape");
        let mut fused = a.clone();
        fused.scale_axpy(2.0, -1.0, &b).expect("same shape");
        assert_eq!(fused, two_pass);
        assert!(fused
            .as_slice()
            .iter()
            .zip(two_pass.as_slice())
            .all(|(x, y)| x.to_bits() == y.to_bits()));
    }

    #[test]
    fn scale_axpy_rejects_shape_mismatch() {
        let mut a = sample();
        let b = DenseMatrix::zeros(1, 1);
        assert!(a.scale_axpy(2.0, -1.0, &b).is_err());
    }

    #[test]
    fn column_sums_sum_each_column() {
        let a = sample();
        assert_eq!(a.column_sums(), vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = sample();
        let g = a.gather_rows(&[1, 1, 0]);
        assert_eq!(g.shape(), (3, 3));
        assert_eq!(g.row(0), a.row(1));
        assert_eq!(g.row(2), a.row(0));
    }

    #[test]
    fn stacking() {
        let a = sample();
        let v = a.vstack(&a).expect("same cols");
        assert_eq!(v.shape(), (4, 3));
        let h = a.hstack(&a).expect("same rows");
        assert_eq!(h.shape(), (2, 6));
        assert_eq!(h.get(0, 4), 2.0);
    }

    #[test]
    fn row_argmax_picks_first_max() {
        let m = DenseMatrix::from_rows(&[&[1.0, 3.0, 3.0]]).expect("valid");
        assert_eq!(m.row_argmax(0), Some(1));
        let empty = DenseMatrix::zeros(1, 0);
        assert_eq!(empty.row_argmax(0), None);
    }

    #[test]
    fn non_finite_detection() {
        let mut m = sample();
        assert!(!m.has_non_finite());
        m.set(0, 0, f64::NAN);
        assert!(m.has_non_finite());
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(DenseMatrix::from_vec(2, 2, vec![1.0; 4]).is_ok());
    }

    #[test]
    fn from_rows_rejects_ragged_input() {
        let err = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0]]).expect_err("ragged");
        assert!(matches!(err, SparseError::InvalidData(_)));
    }

    #[test]
    fn resize_reuses_capacity_and_zeros() {
        let mut m = DenseMatrix::filled(4, 4, 7.0);
        let cap_before = m.heap_bytes();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(m.heap_bytes(), cap_before, "shrink keeps the allocation");
        m.resize(4, 4);
        assert_eq!(m.shape(), (4, 4));
        assert!(m.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn copy_from_matches_clone() {
        let a = sample();
        let mut b = DenseMatrix::filled(5, 5, 9.0);
        b.copy_from(&a);
        assert_eq!(b, a);
    }

    #[test]
    fn matmul_into_is_identical_to_matmul() {
        let a = sample();
        let b = DenseMatrix::from_rows(&[&[7.0, 1.0], &[8.0, -2.0], &[9.0, 0.5]]).expect("valid");
        let fresh = a.matmul(&b).expect("shapes match");
        let mut reused = DenseMatrix::filled(1, 7, 3.0);
        a.matmul_into(&b, &mut reused).expect("shapes match");
        assert_eq!(reused, fresh);
        assert!(a.matmul_into(&a, &mut reused).is_err());
    }

    #[test]
    fn gather_rows_into_is_identical_to_gather_rows() {
        let a = sample();
        let fresh = a.gather_rows(&[1, 1, 0]);
        let mut reused = DenseMatrix::filled(9, 2, -1.0);
        a.gather_rows_into(&[1, 1, 0], &mut reused);
        assert_eq!(reused, fresh);
    }

    #[test]
    fn operator_overloads() {
        let a = sample();
        let sum = &a + &a;
        assert_eq!(sum.get(0, 0), 2.0);
        let diff = &a - &a;
        assert_eq!(diff.sum(), 0.0);
        let scaled = &a * 3.0;
        assert_eq!(scaled.get(1, 0), 12.0);
    }
}
