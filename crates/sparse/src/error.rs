use std::error::Error;
use std::fmt;

/// Error type for all fallible operations in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SparseError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left-hand operand as `(rows, cols)`.
        left: (usize, usize),
        /// Shape of the right-hand operand as `(rows, cols)`.
        right: (usize, usize),
        /// Name of the operation that was attempted.
        op: &'static str,
    },
    /// An index was outside the matrix bounds.
    IndexOutOfBounds {
        /// The offending `(row, col)` index.
        index: (usize, usize),
        /// The matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// An operation required a square matrix but got a rectangular one.
    NotSquare {
        /// The matrix shape as `(rows, cols)`.
        shape: (usize, usize),
    },
    /// Raw construction data was inconsistent (e.g. a row of different length).
    InvalidData(String),
    /// An iterative routine failed to converge.
    NoConvergence {
        /// Iterations performed before giving up.
        iterations: usize,
    },
}

impl fmt::Display for SparseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparseError::ShapeMismatch { left, right, op } => write!(
                f,
                "shape mismatch in {op}: left is {}x{}, right is {}x{}",
                left.0, left.1, right.0, right.1
            ),
            SparseError::IndexOutOfBounds { index, shape } => write!(
                f,
                "index ({}, {}) out of bounds for {}x{} matrix",
                index.0, index.1, shape.0, shape.1
            ),
            SparseError::NotSquare { shape } => {
                write!(
                    f,
                    "operation requires a square matrix, got {}x{}",
                    shape.0, shape.1
                )
            }
            SparseError::InvalidData(msg) => write!(f, "invalid matrix data: {msg}"),
            SparseError::NoConvergence { iterations } => {
                write!(f, "iteration did not converge after {iterations} steps")
            }
        }
    }
}

impl Error for SparseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = SparseError::ShapeMismatch {
            left: (2, 3),
            right: (4, 5),
            op: "matmul",
        };
        let text = err.to_string();
        assert!(text.contains("matmul"));
        assert!(text.contains("2x3"));
        assert!(text.contains("4x5"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SparseError>();
    }

    #[test]
    fn index_error_display() {
        let err = SparseError::IndexOutOfBounds {
            index: (9, 0),
            shape: (3, 3),
        };
        assert!(err.to_string().contains("(9, 0)"));
    }
}
