//! Runtime-dispatched SIMD micro-kernels for the spmm and axpy hot loops.
//!
//! The Chebyshev recurrence spends nearly all of its time in two loops: the
//! CSR sparse–dense product ([`crate::CsrMatrix::mul_dense_into`]) and the
//! `T_k = 2·L̂·T_{k−1} − T_{k−2}` combine step. This module provides explicit
//! `std::arch` implementations of both (AVX2 on x86-64, NEON on aarch64)
//! behind a process-wide dispatcher, with the portable scalar tile loop as
//! the always-correct fallback.
//!
//! # Byte-identity contract
//!
//! Every vector implementation performs, per output element, exactly the
//! scalar kernel's operation sequence: addends accumulate in stored-entry
//! order, and each step is a distinct IEEE-754 multiply followed by a
//! distinct add — **never** a fused multiply-add, which would round once
//! instead of twice and change low bits. Lanes of a SIMD register are
//! independent output elements, so vectorization only reorders work *across*
//! elements, never the summation *within* one. The result is bit-identical
//! to the scalar path on every input, which is what lets the dispatch layer
//! sit underneath the workspace/parallel/batched equivalence proptests
//! without weakening them to tolerance checks.
//!
//! # Selection
//!
//! The active kernel is resolved once, on first use, from the `GANA_KERNEL`
//! environment variable (`scalar`, `avx2`, `neon`, or `auto`) falling back
//! to CPU-feature detection. [`force`] overrides the choice process-wide at
//! any time (used by `EngineBuilder` and tests); requesting a kernel the CPU
//! cannot run falls back to scalar rather than faulting. Per-call entry
//! points ([`crate::CsrMatrix::mul_dense_into_with_kernel`]) bypass the
//! global selection entirely so both paths are testable in one process on
//! any box.

#![allow(unsafe_code)]

use std::ops::Range;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Column-tile width shared by every spmm kernel variant: eight `f64`s span
/// one cache line and fit the widest vector unit we target (2×4 lanes on
/// AVX2, 4×2 on NEON), so each stored entry costs one broadcast-multiply-add
/// sweep with no output loads or stores inside the nnz loop.
pub const COL_TILE: usize = 8;

/// A spmm/axpy micro-kernel implementation selectable at runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Portable register-tiled scalar loop — the bit-exact reference and
    /// universal fallback.
    Scalar,
    /// AVX2 (x86-64) — 256-bit lanes, separate mul/add (no FMA).
    Avx2,
    /// NEON (aarch64) — 128-bit lanes, separate mul/add (no FMA).
    Neon,
}

impl Kernel {
    /// The kernel's stable lowercase name, as accepted by `GANA_KERNEL` and
    /// reported in serve `stats` and bench records.
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Scalar => "scalar",
            Kernel::Avx2 => "avx2",
            Kernel::Neon => "neon",
        }
    }

    /// Parses a kernel name (`scalar`/`avx2`/`neon`). Returns `None` for
    /// anything else, including `auto` — callers map that to
    /// [`Kernel::detect`].
    pub fn parse(name: &str) -> Option<Kernel> {
        match name {
            "scalar" => Some(Kernel::Scalar),
            "avx2" => Some(Kernel::Avx2),
            "neon" => Some(Kernel::Neon),
            _ => None,
        }
    }

    /// True when the current CPU can execute this kernel.
    pub fn is_available(self) -> bool {
        match self {
            Kernel::Scalar => true,
            Kernel::Avx2 => {
                #[cfg(target_arch = "x86_64")]
                {
                    std::arch::is_x86_feature_detected!("avx2")
                }
                #[cfg(not(target_arch = "x86_64"))]
                {
                    false
                }
            }
            // NEON is a mandatory feature of AArch64.
            Kernel::Neon => cfg!(target_arch = "aarch64"),
        }
    }

    /// The fastest kernel the current CPU supports.
    pub fn detect() -> Kernel {
        if Kernel::Avx2.is_available() {
            Kernel::Avx2
        } else if Kernel::Neon.is_available() {
            Kernel::Neon
        } else {
            Kernel::Scalar
        }
    }
}

/// Process-wide override set by [`force`]: 0 = none, else `Kernel` tag + 1.
static FORCED: AtomicU8 = AtomicU8::new(0);

/// Environment-resolved default, computed once on first [`active`] call.
static DEFAULT: OnceLock<Kernel> = OnceLock::new();

fn from_tag(tag: u8) -> Option<Kernel> {
    match tag {
        1 => Some(Kernel::Scalar),
        2 => Some(Kernel::Avx2),
        3 => Some(Kernel::Neon),
        _ => None,
    }
}

fn to_tag(kernel: Option<Kernel>) -> u8 {
    match kernel {
        None => 0,
        Some(Kernel::Scalar) => 1,
        Some(Kernel::Avx2) => 2,
        Some(Kernel::Neon) => 3,
    }
}

fn resolve_default() -> Kernel {
    let requested = std::env::var("GANA_KERNEL").ok();
    match requested.as_deref() {
        Some(name) => match Kernel::parse(name) {
            Some(k) if k.is_available() => k,
            // An explicitly requested but unavailable kernel degrades to
            // scalar (never faults); unknown names mean auto-detect.
            Some(_) => Kernel::Scalar,
            None => Kernel::detect(),
        },
        None => Kernel::detect(),
    }
}

/// The kernel every dispatching entry point runs right now: the [`force`]
/// override when set, otherwise the `GANA_KERNEL`/auto-detected default.
pub fn active() -> Kernel {
    if let Some(k) = from_tag(FORCED.load(Ordering::Relaxed)) {
        return k;
    }
    *DEFAULT.get_or_init(resolve_default)
}

/// Overrides the active kernel process-wide (`None` restores the
/// `GANA_KERNEL`/auto default). Forcing a kernel the CPU cannot execute
/// selects scalar instead, so a config written on one box is safe on
/// another. Returns the kernel that is now active.
pub fn force(kernel: Option<Kernel>) -> Kernel {
    let effective = match kernel {
        Some(k) if !k.is_available() => Some(Kernel::Scalar),
        other => other,
    };
    FORCED.store(to_tag(effective), Ordering::Relaxed);
    active()
}

/// Computes output rows `range` of the CSR×dense product into `dst` (a
/// row-major `range.len() × cols` block) with the given kernel. `x` is the
/// dense operand's flat row-major data of width `cols`; `dst` must be
/// zeroed. Falls back to scalar when the requested kernel is unavailable.
#[allow(clippy::too_many_arguments)]
pub(crate) fn spmm_rows(
    kernel: Kernel,
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
    x: &[f64],
    cols: usize,
    range: Range<usize>,
    dst: &mut [f64],
) {
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_available() => unsafe {
            spmm_rows_avx2(indptr, indices, values, x, cols, range, dst);
        },
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => unsafe {
            spmm_rows_neon(indptr, indices, values, x, cols, range, dst);
        },
        _ => spmm_rows_scalar(indptr, indices, values, x, cols, range, dst),
    }
}

/// In-place `dst[i] += alpha * src[i]` with the given kernel. The slices
/// must have equal length.
pub(crate) fn axpy(kernel: Kernel, dst: &mut [f64], alpha: f64, src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_available() => unsafe {
            axpy_avx2(dst, alpha, src);
        },
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => unsafe {
            axpy_neon(dst, alpha, src);
        },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d += alpha * s;
            }
        }
    }
}

/// In-place fused `dst[i] = alpha * dst[i] + beta * src[i]` with the given
/// kernel — the Chebyshev combine step `T_k = 2·(L̂·T_{k−1}) − T_{k−2}` in
/// one sweep. Per element this is multiply, multiply, add: bit-identical to
/// a `scale_in_place(alpha)` pass followed by an `axpy(beta, src)` pass.
/// The slices must have equal length.
pub(crate) fn scale_axpy(kernel: Kernel, dst: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
    debug_assert_eq!(dst.len(), src.len());
    match kernel {
        #[cfg(target_arch = "x86_64")]
        Kernel::Avx2 if Kernel::Avx2.is_available() => unsafe {
            scale_axpy_avx2(dst, alpha, beta, src);
        },
        #[cfg(target_arch = "aarch64")]
        Kernel::Neon => unsafe {
            scale_axpy_neon(dst, alpha, beta, src);
        },
        _ => {
            for (d, &s) in dst.iter_mut().zip(src) {
                *d = alpha * *d + beta * s;
            }
        }
    }
}

/// The portable tile loop — the bit-exact reference every SIMD variant must
/// reproduce. Identical to the pre-dispatch `spmm_rows_tiled` body.
fn spmm_rows_scalar(
    indptr: &[usize],
    indices: &[usize],
    values: &[f64],
    x: &[f64],
    cols: usize,
    range: Range<usize>,
    dst: &mut [f64],
) {
    let start = range.start;
    for r in range {
        let lo = indptr[r];
        let hi = indptr[r + 1];
        let row_out = &mut dst[(r - start) * cols..(r - start + 1) * cols];
        let mut c0 = 0;
        while c0 + COL_TILE <= cols {
            let mut acc = [0.0f64; COL_TILE];
            for i in lo..hi {
                let v = values[i];
                let base = indices[i] * cols + c0;
                let src = &x[base..base + COL_TILE];
                for (a, &s) in acc.iter_mut().zip(src) {
                    *a += v * s;
                }
            }
            row_out[c0..c0 + COL_TILE].copy_from_slice(&acc);
            c0 += COL_TILE;
        }
        spmm_row_tail(indices, values, lo, hi, x, cols, c0, row_out);
    }
}

/// Ragged-tail columns (`cols % COL_TILE`) of one output row, accumulated
/// in nnz order with in-place adds on the zeroed destination. Shared by all
/// kernel variants so the tail is literally the same code everywhere.
#[inline]
#[allow(clippy::too_many_arguments)]
fn spmm_row_tail(
    indices: &[usize],
    values: &[f64],
    lo: usize,
    hi: usize,
    x: &[f64],
    cols: usize,
    c0: usize,
    row_out: &mut [f64],
) {
    if c0 >= cols {
        return;
    }
    for i in lo..hi {
        let v = values[i];
        let src = &x[indices[i] * cols + c0..(indices[i] + 1) * cols];
        for (d, &s) in row_out[c0..].iter_mut().zip(src) {
            *d += v * s;
        }
    }
}

#[cfg(target_arch = "x86_64")]
mod avx2 {
    use super::{spmm_row_tail, COL_TILE};
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_set1_pd, _mm256_setzero_pd,
        _mm256_storeu_pd,
    };
    use std::ops::Range;

    /// AVX2 spmm tile loop: the eight accumulators live in two 256-bit
    /// registers; each stored entry broadcasts once and does two separate
    /// multiply-then-add sweeps (FMA is deliberately not used — see the
    /// module's byte-identity contract).
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2 and that the slice
    /// geometry is valid CSR (every `indices[i] * cols + COL_TILE` load
    /// stays inside `x`, every output row inside `dst`).
    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn spmm_rows_avx2(
        indptr: &[usize],
        indices: &[usize],
        values: &[f64],
        x: &[f64],
        cols: usize,
        range: Range<usize>,
        dst: &mut [f64],
    ) {
        let start = range.start;
        for r in range {
            let lo = indptr[r];
            let hi = indptr[r + 1];
            let out_base = (r - start) * cols;
            let mut c0 = 0;
            while c0 + COL_TILE <= cols {
                // SAFETY: `c0 + COL_TILE <= cols` bounds every 4-lane load
                // at `indices[i] * cols + c0 (+4)` inside row `indices[i]`
                // of `x`, and the two stores inside `dst`'s current row.
                unsafe {
                    let mut acc0 = _mm256_setzero_pd();
                    let mut acc1 = _mm256_setzero_pd();
                    for i in lo..hi {
                        let v = _mm256_set1_pd(values[i]);
                        let base = indices[i] * cols + c0;
                        let s0 = _mm256_loadu_pd(x.as_ptr().add(base));
                        let s1 = _mm256_loadu_pd(x.as_ptr().add(base + 4));
                        acc0 = _mm256_add_pd(acc0, _mm256_mul_pd(v, s0));
                        acc1 = _mm256_add_pd(acc1, _mm256_mul_pd(v, s1));
                    }
                    _mm256_storeu_pd(dst.as_mut_ptr().add(out_base + c0), acc0);
                    _mm256_storeu_pd(dst.as_mut_ptr().add(out_base + c0 + 4), acc1);
                }
                c0 += COL_TILE;
            }
            let row_out = &mut dst[out_base..out_base + cols];
            spmm_row_tail(indices, values, lo, hi, x, cols, c0, row_out);
        }
    }

    /// AVX2 `dst += alpha * src`, 4 lanes per step, scalar tail.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2; `dst` and `src` must
    /// have equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn axpy_avx2(dst: &mut [f64], alpha: f64, src: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        // SAFETY: `i + 4 <= n` bounds each load/store; lengths are equal.
        unsafe {
            let va = _mm256_set1_pd(alpha);
            while i + 4 <= n {
                let d = _mm256_loadu_pd(dst.as_ptr().add(i));
                let s = _mm256_loadu_pd(src.as_ptr().add(i));
                _mm256_storeu_pd(
                    dst.as_mut_ptr().add(i),
                    _mm256_add_pd(d, _mm256_mul_pd(va, s)),
                );
                i += 4;
            }
        }
        while i < n {
            dst[i] += alpha * src[i];
            i += 1;
        }
    }

    /// AVX2 fused `dst = alpha * dst + beta * src` (multiply, multiply,
    /// add — never FMA), 4 lanes per step, scalar tail.
    ///
    /// # Safety
    ///
    /// The caller must ensure the CPU supports AVX2; `dst` and `src` must
    /// have equal length.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale_axpy_avx2(dst: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        // SAFETY: `i + 4 <= n` bounds each load/store; lengths are equal.
        unsafe {
            let va = _mm256_set1_pd(alpha);
            let vb = _mm256_set1_pd(beta);
            while i + 4 <= n {
                let d = _mm256_loadu_pd(dst.as_ptr().add(i));
                let s = _mm256_loadu_pd(src.as_ptr().add(i));
                let scaled = _mm256_mul_pd(va, d);
                _mm256_storeu_pd(
                    dst.as_mut_ptr().add(i),
                    _mm256_add_pd(scaled, _mm256_mul_pd(vb, s)),
                );
                i += 4;
            }
        }
        while i < n {
            dst[i] = alpha * dst[i] + beta * src[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "x86_64")]
use avx2::{axpy_avx2, scale_axpy_avx2, spmm_rows_avx2};

#[cfg(target_arch = "aarch64")]
mod neon {
    use super::{spmm_row_tail, COL_TILE};
    use std::arch::aarch64::{vaddq_f64, vdupq_n_f64, vld1q_f64, vmulq_f64, vst1q_f64};
    use std::ops::Range;

    /// NEON spmm tile loop: eight accumulators in four 128-bit registers;
    /// separate multiply-then-add (no `vfmaq_f64`) per the byte-identity
    /// contract.
    ///
    /// # Safety
    ///
    /// `indptr`/`indices`/`values` must be valid CSR over `x` (width
    /// `cols`) and `dst` must hold `range.len() * cols` zeroed elements.
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn spmm_rows_neon(
        indptr: &[usize],
        indices: &[usize],
        values: &[f64],
        x: &[f64],
        cols: usize,
        range: Range<usize>,
        dst: &mut [f64],
    ) {
        let start = range.start;
        for r in range {
            let lo = indptr[r];
            let hi = indptr[r + 1];
            let out_base = (r - start) * cols;
            let mut c0 = 0;
            while c0 + COL_TILE <= cols {
                // SAFETY: `c0 + COL_TILE <= cols` bounds every 2-lane load
                // inside row `indices[i]` of `x` and the stores inside
                // `dst`'s current row.
                unsafe {
                    let mut acc0 = vdupq_n_f64(0.0);
                    let mut acc1 = vdupq_n_f64(0.0);
                    let mut acc2 = vdupq_n_f64(0.0);
                    let mut acc3 = vdupq_n_f64(0.0);
                    for i in lo..hi {
                        let v = vdupq_n_f64(values[i]);
                        let base = indices[i] * cols + c0;
                        let p = x.as_ptr().add(base);
                        acc0 = vaddq_f64(acc0, vmulq_f64(v, vld1q_f64(p)));
                        acc1 = vaddq_f64(acc1, vmulq_f64(v, vld1q_f64(p.add(2))));
                        acc2 = vaddq_f64(acc2, vmulq_f64(v, vld1q_f64(p.add(4))));
                        acc3 = vaddq_f64(acc3, vmulq_f64(v, vld1q_f64(p.add(6))));
                    }
                    let q = dst.as_mut_ptr().add(out_base + c0);
                    vst1q_f64(q, acc0);
                    vst1q_f64(q.add(2), acc1);
                    vst1q_f64(q.add(4), acc2);
                    vst1q_f64(q.add(6), acc3);
                }
                c0 += COL_TILE;
            }
            let row_out = &mut dst[out_base..out_base + cols];
            spmm_row_tail(indices, values, lo, hi, x, cols, c0, row_out);
        }
    }

    /// NEON `dst += alpha * src`, 2 lanes per step, scalar tail.
    ///
    /// # Safety
    ///
    /// `dst` and `src` must have equal length.
    pub(super) unsafe fn axpy_neon(dst: &mut [f64], alpha: f64, src: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        // SAFETY: `i + 2 <= n` bounds each load/store; lengths are equal.
        unsafe {
            let va = vdupq_n_f64(alpha);
            while i + 2 <= n {
                let d = vld1q_f64(dst.as_ptr().add(i));
                let s = vld1q_f64(src.as_ptr().add(i));
                vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(d, vmulq_f64(va, s)));
                i += 2;
            }
        }
        while i < n {
            dst[i] += alpha * src[i];
            i += 1;
        }
    }

    /// NEON fused `dst = alpha * dst + beta * src`, 2 lanes per step,
    /// scalar tail.
    ///
    /// # Safety
    ///
    /// `dst` and `src` must have equal length.
    pub(super) unsafe fn scale_axpy_neon(dst: &mut [f64], alpha: f64, beta: f64, src: &[f64]) {
        let n = dst.len();
        let mut i = 0;
        // SAFETY: `i + 2 <= n` bounds each load/store; lengths are equal.
        unsafe {
            let va = vdupq_n_f64(alpha);
            let vb = vdupq_n_f64(beta);
            while i + 2 <= n {
                let d = vld1q_f64(dst.as_ptr().add(i));
                let s = vld1q_f64(src.as_ptr().add(i));
                let scaled = vmulq_f64(va, d);
                vst1q_f64(dst.as_mut_ptr().add(i), vaddq_f64(scaled, vmulq_f64(vb, s)));
                i += 2;
            }
        }
        while i < n {
            dst[i] = alpha * dst[i] + beta * src[i];
            i += 1;
        }
    }
}

#[cfg(target_arch = "aarch64")]
use neon::{axpy_neon, scale_axpy_neon, spmm_rows_neon};

#[cfg(test)]
mod tests {
    use super::*;

    fn every_runnable_kernel() -> Vec<Kernel> {
        [Kernel::Scalar, Kernel::Avx2, Kernel::Neon]
            .into_iter()
            .filter(|k| k.is_available())
            .collect()
    }

    #[test]
    fn names_round_trip_through_parse() {
        for k in [Kernel::Scalar, Kernel::Avx2, Kernel::Neon] {
            assert_eq!(Kernel::parse(k.name()), Some(k));
        }
        assert_eq!(Kernel::parse("auto"), None);
        assert_eq!(Kernel::parse(""), None);
    }

    #[test]
    fn scalar_is_always_available_and_detect_is_runnable() {
        assert!(Kernel::Scalar.is_available());
        assert!(Kernel::detect().is_available());
    }

    #[test]
    fn axpy_matches_scalar_bitwise_on_every_kernel() {
        let src: Vec<f64> = (0..37).map(|i| (i as f64).sin() * 1e3).collect();
        let init: Vec<f64> = (0..37).map(|i| (i as f64).cos() / 7.0).collect();
        let mut reference = init.clone();
        axpy(Kernel::Scalar, &mut reference, -0.3, &src);
        for k in every_runnable_kernel() {
            let mut dst = init.clone();
            axpy(k, &mut dst, -0.3, &src);
            let same = reference
                .iter()
                .zip(&dst)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "kernel {:?} diverged from scalar axpy", k);
        }
    }

    #[test]
    fn scale_axpy_is_bitwise_equal_to_two_pass_on_every_kernel() {
        let src: Vec<f64> = (0..41).map(|i| (i as f64 * 0.7).tan()).collect();
        let init: Vec<f64> = (0..41).map(|i| 1.0 / (i as f64 + 0.5)).collect();
        // Two-pass reference: scale then axpy, both scalar.
        let mut reference = init.clone();
        for v in &mut reference {
            *v *= 2.0;
        }
        axpy(Kernel::Scalar, &mut reference, -1.0, &src);
        for k in every_runnable_kernel() {
            let mut dst = init.clone();
            scale_axpy(k, &mut dst, 2.0, -1.0, &src);
            let same = reference
                .iter()
                .zip(&dst)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "kernel {:?} diverged from two-pass scale+axpy", k);
        }
    }

    #[test]
    fn force_falls_back_to_scalar_for_unavailable_kernels() {
        let unavailable = [Kernel::Avx2, Kernel::Neon]
            .into_iter()
            .find(|k| !k.is_available());
        if let Some(k) = unavailable {
            assert_eq!(force(Some(k)), Kernel::Scalar);
        }
        // Restore the default for other tests in this process.
        force(None);
    }
}
