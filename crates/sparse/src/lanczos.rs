//! Largest-eigenvalue estimation for symmetric sparse matrices.
//!
//! The GCN rescales the normalized Laplacian as `L̂ = 2L/λ_max − I`
//! (paper Eq. 3/5). The paper notes λ_max is "computed inexpensively using
//! the Lanczos algorithm"; this module provides that routine, plus a plain
//! power iteration used as a cross-check in tests.

use crate::{CsrMatrix, Result, SparseError};

/// Deterministic pseudo-random starting vector so results are reproducible.
fn seed_vector(n: usize) -> Vec<f64> {
    let mut state = 0x9e37_79b9_7f4a_7c15_u64;
    (0..n)
        .map(|_| {
            // xorshift* generator, mapped to (0, 1].
            state ^= state >> 12;
            state ^= state << 25;
            state ^= state >> 27;
            let r = state.wrapping_mul(0x2545_f491_4f6c_dd1d);
            (r >> 11) as f64 / (1u64 << 53) as f64 + 1e-3
        })
        .collect()
}

fn norm(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Iterations between convergence checks of [`largest_eigenvalue`]. The
/// tridiagonal eigenvalue estimate (bisection, `O(k)` per evaluation) costs
/// more than a Lanczos step on the sparse graphs this crate serves, so the
/// plateau test runs every few steps; requiring the estimate to be flat
/// across a whole stride is a *stronger* stopping condition than the
/// per-iteration check it replaces.
const CHECK_STRIDE: usize = 3;

/// Estimates the largest eigenvalue of a symmetric matrix with the Lanczos
/// algorithm.
///
/// Runs the plain three-term recurrence (no reorthogonalization) for at
/// most `max_iter` steps, keeping only the last two basis vectors, and
/// returns the largest eigenvalue of the Krylov tridiagonal matrix,
/// computed by bisection on its Sturm sequence. Loss of orthogonality in
/// finite precision duplicates *converged* Ritz values; it does not
/// degrade the extreme one this routine reports, so the recurrence stays
/// `O(nnz + n)` per step instead of the `O(k·n)` a full
/// reorthogonalization would cost.
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular input. An all-zero
/// matrix yields `0.0`.
///
/// # Examples
///
/// ```
/// use gana_sparse::{CooMatrix, lanczos};
///
/// # fn main() -> Result<(), gana_sparse::SparseError> {
/// // Complete graph K3: eigenvalues of the adjacency are {2, -1, -1}.
/// let mut coo = CooMatrix::new(3, 3);
/// for i in 0..3 {
///     for j in 0..3 {
///         if i != j {
///             coo.push(i, j, 1.0)?;
///         }
///     }
/// }
/// let lambda = lanczos::largest_eigenvalue(&coo.to_csr(), 30, 1e-10)?;
/// assert!((lambda - 2.0).abs() < 1e-8);
/// # Ok(())
/// # }
/// ```
pub fn largest_eigenvalue(a: &CsrMatrix, max_iter: usize, tol: f64) -> Result<f64> {
    if a.rows() != a.cols() {
        return Err(SparseError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 || a.nnz() == 0 {
        return Ok(0.0);
    }

    let m = max_iter.min(n).max(1);
    let mut alphas: Vec<f64> = Vec::with_capacity(m);
    let mut betas: Vec<f64> = Vec::with_capacity(m);

    let mut q = seed_vector(n);
    let q_norm = norm(&q);
    for x in &mut q {
        *x /= q_norm;
    }
    let mut q_prev = vec![0.0f64; n];

    let mut prev_estimate = f64::NEG_INFINITY;
    for k in 0..m {
        let mut w = a.mul_vec(&q)?;
        let alpha: f64 = w.iter().zip(&q).map(|(a, b)| a * b).sum();
        alphas.push(alpha);
        // w = w - alpha*q_k - beta*q_{k-1}.
        for (wi, qi) in w.iter_mut().zip(&q) {
            *wi -= alpha * qi;
        }
        if k > 0 {
            let beta_prev = betas[k - 1];
            for (wi, qi) in w.iter_mut().zip(&q_prev) {
                *wi -= beta_prev * qi;
            }
        }

        if k >= 2 && k % CHECK_STRIDE == 0 {
            let estimate = tridiag_max_eigenvalue(&alphas, &betas);
            if (estimate - prev_estimate).abs() <= tol * estimate.abs().max(1.0) {
                return Ok(estimate);
            }
            prev_estimate = estimate;
        }

        let beta = norm(&w);
        if beta <= f64::EPSILON * (n as f64) {
            // Invariant subspace found: the tridiagonal spectrum is exact.
            return Ok(tridiag_max_eigenvalue(&alphas, &betas));
        }
        betas.push(beta);
        for wi in &mut w {
            *wi /= beta;
        }
        q_prev = std::mem::replace(&mut q, w);
    }
    Ok(tridiag_max_eigenvalue(&alphas, &betas))
}

/// Power iteration estimate of the largest-magnitude eigenvalue.
///
/// Slower to converge than Lanczos; retained as an independent reference for
/// tests and as a fallback for matrices whose dominant eigenvalue is positive
/// (always true for graph Laplacians).
///
/// # Errors
///
/// Returns [`SparseError::NotSquare`] for rectangular input.
pub fn power_iteration(a: &CsrMatrix, max_iter: usize, tol: f64) -> Result<f64> {
    if a.rows() != a.cols() {
        return Err(SparseError::NotSquare { shape: a.shape() });
    }
    let n = a.rows();
    if n == 0 || a.nnz() == 0 {
        return Ok(0.0);
    }
    let mut v = seed_vector(n);
    let mut lambda = 0.0;
    for _ in 0..max_iter {
        let w = a.mul_vec(&v)?;
        let w_norm = norm(&w);
        if w_norm == 0.0 {
            return Ok(0.0);
        }
        let next: Vec<f64> = w.iter().map(|x| x / w_norm).collect();
        let new_lambda: f64 = {
            let aw = a.mul_vec(&next)?;
            aw.iter().zip(&next).map(|(a, b)| a * b).sum()
        };
        if (new_lambda - lambda).abs() <= tol * new_lambda.abs().max(1.0) {
            return Ok(new_lambda);
        }
        lambda = new_lambda;
        v = next;
    }
    Ok(lambda)
}

/// Largest eigenvalue of the symmetric tridiagonal matrix with diagonal
/// `alphas` and off-diagonal `betas`, found by bisection on the Sturm
/// sequence sign-change count.
fn tridiag_max_eigenvalue(alphas: &[f64], betas: &[f64]) -> f64 {
    let n = alphas.len();
    if n == 0 {
        return 0.0;
    }
    // Gershgorin bounds.
    let mut lo = f64::INFINITY;
    let mut hi = f64::NEG_INFINITY;
    for i in 0..n {
        let b_left = if i > 0 { betas[i - 1].abs() } else { 0.0 };
        let b_right = if i < n - 1 { betas[i].abs() } else { 0.0 };
        lo = lo.min(alphas[i] - b_left - b_right);
        hi = hi.max(alphas[i] + b_left + b_right);
    }
    if lo == hi {
        return lo;
    }
    // Count of eigenvalues < x via the Sturm sequence of the tridiagonal.
    let count_below = |x: f64| -> usize {
        let mut count = 0;
        let mut d = 1.0_f64;
        for i in 0..n {
            let beta_sq = if i > 0 {
                betas[i - 1] * betas[i - 1]
            } else {
                0.0
            };
            d = alphas[i] - x - beta_sq / if d != 0.0 { d } else { f64::EPSILON };
            if d < 0.0 {
                count += 1;
            }
        }
        count
    };
    // Bisect for the largest eigenvalue: smallest x with count_below(x) == n.
    let (mut lo, mut hi) = (lo - 1e-9, hi + 1e-9);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if count_below(mid) >= n {
            hi = mid;
        } else {
            lo = mid;
        }
        if hi - lo < 1e-13 * hi.abs().max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CooMatrix;

    fn path_laplacian(n: usize) -> CsrMatrix {
        // Unnormalized Laplacian of a path graph: known spectrum
        // 2 - 2cos(k*pi/n), max ≈ 4 for large n.
        let mut coo = CooMatrix::new(n, n);
        for i in 0..n {
            let deg = if i == 0 || i == n - 1 { 1.0 } else { 2.0 };
            coo.push(i, i, deg).expect("in bounds");
            if i + 1 < n {
                coo.push_symmetric(i, i + 1, -1.0).expect("in bounds");
            }
        }
        coo.to_csr()
    }

    #[test]
    fn lanczos_matches_known_path_spectrum() {
        let n = 50;
        let l = path_laplacian(n);
        let expected = 2.0 - 2.0 * (std::f64::consts::PI * (n as f64 - 1.0) / n as f64).cos();
        let lambda = largest_eigenvalue(&l, 60, 1e-12).expect("square matrix");
        assert!(
            (lambda - expected).abs() < 1e-6,
            "got {lambda}, expected {expected}"
        );
    }

    #[test]
    fn lanczos_agrees_with_power_iteration() {
        let l = path_laplacian(30);
        let a = largest_eigenvalue(&l, 40, 1e-12).expect("square");
        let b = power_iteration(&l, 5000, 1e-12).expect("square");
        assert!((a - b).abs() < 1e-6, "lanczos {a} vs power {b}");
    }

    #[test]
    fn diagonal_matrix_returns_max_diagonal() {
        let d = CsrMatrix::from_diagonal(&[1.0, 7.0, 3.0]);
        let lambda = largest_eigenvalue(&d, 10, 1e-12).expect("square");
        assert!((lambda - 7.0).abs() < 1e-9);
    }

    #[test]
    fn zero_and_empty_matrices() {
        let z = CooMatrix::new(4, 4).to_csr();
        assert_eq!(largest_eigenvalue(&z, 10, 1e-9).expect("square"), 0.0);
        let e = CooMatrix::new(0, 0).to_csr();
        assert_eq!(largest_eigenvalue(&e, 10, 1e-9).expect("square"), 0.0);
    }

    #[test]
    fn rectangular_input_is_rejected() {
        let r = CooMatrix::new(2, 3).to_csr();
        assert!(matches!(
            largest_eigenvalue(&r, 10, 1e-9),
            Err(SparseError::NotSquare { .. })
        ));
    }

    #[test]
    fn normalized_laplacian_eigenvalue_at_most_two() {
        // Normalized Laplacian of K4: eigenvalues {0, 4/3, 4/3, 4/3}.
        let n = 4;
        let mut coo = CooMatrix::new(n, n);
        let d = (n - 1) as f64;
        for i in 0..n {
            coo.push(i, i, 1.0).expect("in bounds");
            for j in 0..n {
                if i != j {
                    coo.push(i, j, -1.0 / d).expect("in bounds");
                }
            }
        }
        let lambda = largest_eigenvalue(&coo.to_csr(), 20, 1e-12).expect("square");
        assert!((lambda - 4.0 / 3.0).abs() < 1e-8);
        assert!(lambda <= 2.0 + 1e-9);
    }
}
