//! Dense and sparse linear-algebra substrate for the GANA reproduction.
//!
//! The GANA paper's GCN (Defferrard-style ChebNet) needs:
//!
//! * dense matrices for feature maps and layer weights ([`DenseMatrix`]),
//! * sparse matrices for graph Laplacians ([`CooMatrix`], [`CsrMatrix`]),
//! * sparse–dense products for the Chebyshev recurrence
//!   (`T_k(L̂) = 2 L̂ T_{k-1}(L̂) − T_{k-2}(L̂)` applied to a signal),
//! * an inexpensive largest-eigenvalue estimate for the Laplacian rescaling
//!   `L̂ = 2L/λ_max − I` ([`lanczos::largest_eigenvalue`]).
//!
//! Everything is implemented from scratch: the paper used scikit's sparse
//! routines, and this crate is the Rust substitute.
//!
//! # Examples
//!
//! ```
//! use gana_sparse::{CooMatrix, DenseMatrix};
//!
//! # fn main() -> Result<(), gana_sparse::SparseError> {
//! // A 3-vertex path graph's adjacency matrix.
//! let mut coo = CooMatrix::new(3, 3);
//! for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1)] {
//!     coo.push(i, j, 1.0)?;
//! }
//! let adj = coo.to_csr();
//! let x = DenseMatrix::from_rows(&[&[1.0], &[10.0], &[100.0]])?;
//! let y = adj.mul_dense(&x)?;
//! assert_eq!(y.get(0, 0), 10.0); // neighbor sum of vertex 0
//! assert_eq!(y.get(1, 0), 101.0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the SIMD kernel module needs a scoped
// `#![allow(unsafe_code)]` for its `std::arch` intrinsics; everything else
// in the crate still refuses unsafe at compile time.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod coo;
mod csr;
mod dense;
mod error;
pub mod kernel;
pub mod lanczos;

pub use coo::CooMatrix;
pub use csr::CsrMatrix;
pub use dense::DenseMatrix;
pub use error::SparseError;
pub use kernel::Kernel;

/// Convenient result alias used across the crate.
pub type Result<T> = std::result::Result<T, SparseError>;
