//! Property-based tests for the linear-algebra substrate: sparse results
//! must agree with dense reference computations, and the spectral helpers
//! must respect their bounds.

use gana_sparse::{lanczos, CooMatrix, CsrMatrix, DenseMatrix, Kernel};
use proptest::prelude::*;

/// Every kernel the current CPU can execute — always contains `Scalar`,
/// plus `Avx2`/`Neon` where the hardware allows, so the SIMD paths are
/// proptested natively wherever possible and degrade to a scalar-vs-scalar
/// check elsewhere.
fn runnable_kernels() -> Vec<Kernel> {
    [Kernel::Scalar, Kernel::Avx2, Kernel::Neon]
        .into_iter()
        .filter(|k| k.is_available())
        .collect()
}

/// Strategy: a random sparse square matrix as (n, triplets).
fn sparse_square() -> impl Strategy<Value = (usize, Vec<(usize, usize, f64)>)> {
    (2usize..12).prop_flat_map(|n| {
        let entry = (0..n, 0..n, -5.0f64..5.0);
        (Just(n), proptest::collection::vec(entry, 0..40))
    })
}

fn build(n: usize, entries: &[(usize, usize, f64)]) -> CsrMatrix {
    let mut coo = CooMatrix::new(n, n);
    for &(r, c, v) in entries {
        coo.push(r, c, v).expect("in bounds by construction");
    }
    coo.to_csr()
}

proptest! {
    #[test]
    fn csr_times_dense_matches_dense_reference((n, entries) in sparse_square()) {
        let a = build(n, &entries);
        let x = DenseMatrix::from_fn(n, 3, |r, c| (r as f64) * 0.7 - (c as f64) * 1.3 + 0.1);
        let sparse = a.mul_dense(&x).expect("shapes match");
        let dense = a.to_dense().matmul(&x).expect("shapes match");
        let diff = (&sparse - &dense).frobenius_norm();
        prop_assert!(diff < 1e-9, "sparse/dense disagree by {diff}");
    }

    #[test]
    fn transpose_mul_matches_explicit((n, entries) in sparse_square()) {
        let a = build(n, &entries);
        let x = DenseMatrix::from_fn(n, 2, |r, c| ((r + 2 * c) as f64).sin());
        let fused = a.transpose_mul_dense(&x).expect("shapes match");
        let explicit = a.transpose().mul_dense(&x).expect("shapes match");
        let diff = (&fused - &explicit).frobenius_norm();
        prop_assert!(diff < 1e-9);
    }

    #[test]
    fn coo_duplicates_sum((n, entries) in sparse_square()) {
        // Build once normally, once with every entry split in half.
        let whole = build(n, &entries);
        let halves: Vec<(usize, usize, f64)> = entries
            .iter()
            .flat_map(|&(r, c, v)| [(r, c, v / 2.0), (r, c, v / 2.0)])
            .collect();
        let summed = build(n, &halves);
        let diff = (&whole.to_dense() - &summed.to_dense()).frobenius_norm();
        prop_assert!(diff < 1e-9);
    }

    #[test]
    fn linear_combination_matches_dense((n, entries) in sparse_square()) {
        let a = build(n, &entries);
        let b = a.transpose();
        let combo = a.linear_combination(2.0, &b, -0.5).expect("same shape");
        let reference = &a.to_dense().scale(2.0) + &b.to_dense().scale(-0.5);
        let diff = (&combo.to_dense() - &reference).frobenius_norm();
        prop_assert!(diff < 1e-9);
    }

    /// Lanczos on a symmetrized matrix stays within the Gershgorin bound
    /// and dominates the Rayleigh quotient of a probe vector.
    #[test]
    fn lanczos_respects_bounds((n, entries) in sparse_square()) {
        let a = build(n, &entries);
        let sym = a.linear_combination(0.5, &a.transpose(), 0.5).expect("same shape");
        let lambda = lanczos::largest_eigenvalue(&sym, 50, 1e-10).expect("square");
        // Gershgorin upper bound.
        let bound = (0..n)
            .map(|r| sym.row_iter(r).map(|(_, v)| v.abs()).sum::<f64>())
            .fold(0.0f64, f64::max);
        prop_assert!(lambda <= bound + 1e-6, "{lambda} > Gershgorin {bound}");
        // Rayleigh quotient of the all-ones vector is a lower bound.
        let ones = vec![1.0; n];
        let ay = sym.mul_vec(&ones).expect("length");
        let rayleigh = ay.iter().sum::<f64>() / n as f64;
        prop_assert!(lambda >= rayleigh - 1e-6, "{lambda} < Rayleigh {rayleigh}");
    }

    #[test]
    fn dense_matmul_is_associative_with_identity(rows in 1usize..8, cols in 1usize..8) {
        let a = DenseMatrix::from_fn(rows, cols, |r, c| (r * cols + c) as f64);
        let left = DenseMatrix::identity(rows).matmul(&a).expect("shapes");
        let right = a.matmul(&DenseMatrix::identity(cols)).expect("shapes");
        prop_assert_eq!(&left, &a);
        prop_assert_eq!(&right, &a);
    }

    /// The register-tiled spmm micro-kernel is bit-for-bit identical to the
    /// naive nnz-outer kernel on random shapes, including widths straddling
    /// the tile boundary and buffers recycled at the wrong size.
    #[test]
    fn tiled_spmm_matches_naive_bit_for_bit(
        (n, entries) in sparse_square(),
        cols in 1usize..20,
        stale_rows in 0usize..9,
    ) {
        let a = build(n, &entries);
        let x = DenseMatrix::from_fn(n, cols, |r, c| ((r * 13 + c * 7) % 29) as f64 / 3.0 - 4.0);
        let mut tiled = DenseMatrix::filled(stale_rows, 2, 42.0);
        let mut naive = DenseMatrix::default();
        a.mul_dense_into(&x, &mut tiled).expect("shapes match");
        a.mul_dense_into_naive(&x, &mut naive).expect("shapes match");
        prop_assert_eq!(&tiled, &naive);
    }

    /// A block-diagonal fusion of random matrices times vertically stacked
    /// features is bit-for-bit the vertical stack of the per-block
    /// products — the identity micro-batched inference rests on.
    #[test]
    fn block_diag_mul_is_stack_of_block_muls(
        parts in proptest::collection::vec(sparse_square(), 1..5),
        cols in 1usize..12,
    ) {
        let blocks: Vec<CsrMatrix> = parts.iter().map(|(n, e)| build(*n, e)).collect();
        let refs: Vec<&CsrMatrix> = blocks.iter().collect();
        let fused = CsrMatrix::block_diag(&refs);
        let feats: Vec<DenseMatrix> = blocks
            .iter()
            .enumerate()
            .map(|(i, b)| {
                DenseMatrix::from_fn(b.cols(), cols, move |r, c| {
                    ((r * 17 + c * 5 + i * 3) % 31) as f64 / 7.0 - 2.0
                })
            })
            .collect();
        let mut stacked = feats[0].clone();
        for f in &feats[1..] {
            stacked = stacked.vstack(f).expect("same width");
        }
        let fused_out = fused.mul_dense(&stacked).expect("shapes match");
        let mut expected = blocks[0].mul_dense(&feats[0]).expect("shapes match");
        for (b, f) in blocks[1..].iter().zip(&feats[1..]) {
            let y = b.mul_dense(f).expect("shapes match");
            expected = expected.vstack(&y).expect("same width");
        }
        prop_assert_eq!(&fused_out, &expected);
    }

    /// Every runtime-dispatchable spmm kernel (scalar, and AVX2/NEON where
    /// the CPU allows) is bit-for-bit identical to the naive reference on
    /// random CSR shapes — including all-empty rows (`nnz == 0` when the
    /// entry vector is empty) and widths exercising the `cols % COL_TILE`
    /// ragged tail on both sides of the tile boundary.
    #[test]
    fn every_kernel_spmm_matches_naive_bit_for_bit(
        (n, entries) in sparse_square(),
        cols in 1usize..20,
    ) {
        let a = build(n, &entries);
        let x = DenseMatrix::from_fn(n, cols, |r, c| ((r * 11 + c * 3) % 37) as f64 / 5.0 - 3.0);
        let mut naive = DenseMatrix::default();
        a.mul_dense_into_naive(&x, &mut naive).expect("shapes match");
        for kernel in runnable_kernels() {
            let mut out = DenseMatrix::default();
            a.mul_dense_into_with_kernel(kernel, &x, &mut out).expect("shapes match");
            prop_assert_eq!(&out, &naive, "kernel {:?} diverged from naive", kernel);
            let identical = out
                .as_slice()
                .iter()
                .zip(naive.as_slice())
                .all(|(p, q)| p.to_bits() == q.to_bits());
            prop_assert!(identical, "kernel {:?} differs from naive in low bits", kernel);
        }
    }

    /// The fused `scale_axpy` sweep — the SIMD Chebyshev combine step — is
    /// bit-identical to the two-pass `scale_in_place` + `axpy` reference on
    /// random shapes, including lengths hitting the vector-lane tails.
    #[test]
    fn fused_scale_axpy_matches_two_pass_bit_for_bit(
        rows in 1usize..9,
        cols in 1usize..20,
        alpha in -4.0f64..4.0,
        beta in -4.0f64..4.0,
    ) {
        let a = DenseMatrix::from_fn(rows, cols, |r, c| ((r * 7 + c * 13) % 41) as f64 / 9.0 - 2.0);
        let b = DenseMatrix::from_fn(rows, cols, |r, c| ((r * 19 + c * 5) % 43) as f64 / 11.0 - 1.0);
        let mut two_pass = a.clone();
        two_pass.scale_in_place(alpha);
        two_pass.axpy(beta, &b).expect("same shape");
        let mut fused = a.clone();
        fused.scale_axpy(alpha, beta, &b).expect("same shape");
        let identical = fused
            .as_slice()
            .iter()
            .zip(two_pass.as_slice())
            .all(|(p, q)| p.to_bits() == q.to_bits());
        prop_assert!(identical, "fused scale_axpy differs from two-pass in low bits");
    }

    #[test]
    fn submatrix_agrees_with_dense_indexing((n, entries) in sparse_square()) {
        let a = build(n, &entries);
        let keep: Vec<usize> = (0..n).step_by(2).collect();
        let sub = a.submatrix(&keep).expect("valid indices");
        for (i, &r) in keep.iter().enumerate() {
            for (j, &c) in keep.iter().enumerate() {
                prop_assert_eq!(sub.get(i, j), a.get(r, c));
            }
        }
    }
}
