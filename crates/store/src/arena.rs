//! A generational arena with typed handles.
//!
//! Entries live in one contiguous slab; a [`Handle`] is an index plus a
//! generation counter, so a handle to a removed-and-reused slot is detected
//! instead of silently reading the new occupant. The design follows the
//! `CNode`/`CEdge` channel arenas of starlight: cheap stable handles over a
//! single allocation domain, with stale-handle misuse caught in debug
//! builds.

use std::fmt;
use std::marker::PhantomData;

/// A typed handle into an [`Arena<T>`]: slot index plus the generation the
/// slot had when the value was inserted.
///
/// Handles are `Copy` and independent of `T: Clone`; two handles are equal
/// exactly when they name the same insertion (same slot *and* generation).
pub struct Handle<T> {
    index: u32,
    generation: u32,
    _marker: PhantomData<fn() -> T>,
}

impl<T> Handle<T> {
    /// The slot index. Valid for dense (never-removed-from) arenas as a
    /// plain array index; prefer [`Arena::get`] otherwise.
    pub fn index(self) -> usize {
        self.index as usize
    }

    /// The generation stamped at insertion.
    pub fn generation(self) -> u32 {
        self.generation
    }

    fn new(index: u32, generation: u32) -> Handle<T> {
        Handle {
            index,
            generation,
            _marker: PhantomData,
        }
    }
}

// Manual impls: a derive would bound them on `T: Clone` etc., but a handle
// never owns a `T`.
impl<T> Clone for Handle<T> {
    fn clone(&self) -> Handle<T> {
        *self
    }
}
impl<T> Copy for Handle<T> {}
impl<T> PartialEq for Handle<T> {
    fn eq(&self, other: &Handle<T>) -> bool {
        self.index == other.index && self.generation == other.generation
    }
}
impl<T> Eq for Handle<T> {}
impl<T> std::hash::Hash for Handle<T> {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.index.hash(state);
        self.generation.hash(state);
    }
}
impl<T> PartialOrd for Handle<T> {
    fn partial_cmp(&self, other: &Handle<T>) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Handle<T> {
    fn cmp(&self, other: &Handle<T>) -> std::cmp::Ordering {
        (self.index, self.generation).cmp(&(other.index, other.generation))
    }
}
impl<T> fmt::Debug for Handle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Handle({}v{})", self.index, self.generation)
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Slot<T> {
    generation: u32,
    value: Option<T>,
}

/// A generational arena: one contiguous slab of slots, freed slots reused
/// with a bumped generation so stale handles never alias a live value.
#[derive(Debug, Clone)]
pub struct Arena<T> {
    slots: Vec<Slot<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Arena<T> {
    fn default() -> Arena<T> {
        Arena::new()
    }
}

impl<T> Arena<T> {
    /// An empty arena.
    pub fn new() -> Arena<T> {
        Arena {
            slots: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// An empty arena with room for `capacity` values before reallocating.
    pub fn with_capacity(capacity: usize) -> Arena<T> {
        Arena {
            slots: Vec::with_capacity(capacity),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Number of live values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no values are live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of slots (live + vacant); the dense index space.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Inserts a value, reusing a vacant slot when one exists.
    pub fn insert(&mut self, value: T) -> Handle<T> {
        self.len += 1;
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            debug_assert!(slot.value.is_none(), "free list points at a live slot");
            slot.value = Some(value);
            Handle::new(index, slot.generation)
        } else {
            let index = u32::try_from(self.slots.len()).expect("arena slot index fits u32");
            self.slots.push(Slot {
                generation: 0,
                value: Some(value),
            });
            Handle::new(index, 0)
        }
    }

    /// Removes the value behind `handle`, or `None` if the handle is stale
    /// or its slot is already vacant. The slot's generation is bumped so
    /// every outstanding handle to the removed value goes stale.
    pub fn remove(&mut self, handle: Handle<T>) -> Option<T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation || slot.value.is_none() {
            return None;
        }
        slot.generation = slot.generation.wrapping_add(1);
        self.free.push(handle.index);
        self.len -= 1;
        slot.value.take()
    }

    /// The value behind `handle`, or `None` for a stale handle.
    pub fn get(&self, handle: Handle<T>) -> Option<&T> {
        let slot = self.slots.get(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_ref()
    }

    /// Mutable access to the value behind `handle`, or `None` when stale.
    pub fn get_mut(&mut self, handle: Handle<T>) -> Option<&mut T> {
        let slot = self.slots.get_mut(handle.index as usize)?;
        if slot.generation != handle.generation {
            return None;
        }
        slot.value.as_mut()
    }

    /// True when `handle` still names a live value.
    pub fn contains(&self, handle: Handle<T>) -> bool {
        self.get(handle).is_some()
    }

    /// Dense access by slot index, for append-only arenas used as slabs.
    ///
    /// # Panics
    ///
    /// Panics if the slot is out of bounds or vacant (the arena had
    /// removals — use handles then).
    pub fn dense(&self, index: usize) -> &T {
        self.slots[index]
            .value
            .as_ref()
            .expect("dense access into an arena with removals")
    }

    /// The current handle for a slot index, or `None` when the slot is
    /// vacant or out of bounds. For append-only slabs this recovers the
    /// handle that `insert` returned for that position.
    pub fn handle_at(&self, index: usize) -> Option<Handle<T>> {
        let slot = self.slots.get(index)?;
        slot.value
            .as_ref()
            .map(|_| Handle::new(index as u32, slot.generation))
    }

    /// Iterates live `(handle, value)` pairs in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (Handle<T>, &T)> {
        self.slots.iter().enumerate().filter_map(|(i, slot)| {
            slot.value
                .as_ref()
                .map(|v| (Handle::new(i as u32, slot.generation), v))
        })
    }

    /// Heap bytes held by the slab and the free list.
    pub fn heap_bytes(&self) -> usize {
        self.slots.capacity() * std::mem::size_of::<Slot<T>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }
}

impl<T> std::ops::Index<Handle<T>> for Arena<T> {
    type Output = T;

    /// # Panics
    ///
    /// Panics on a stale or vacant handle — the debug-visible form of
    /// stale-handle detection.
    fn index(&self, handle: Handle<T>) -> &T {
        self.get(handle)
            .expect("stale arena handle: slot was removed or reused")
    }
}

impl<T: PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Arena<T>) -> bool {
        // Structural equality over live values and their slots; the free
        // list order is an implementation detail.
        self.len == other.len && self.slots == other.slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_roundtrip() {
        let mut arena = Arena::new();
        let a = arena.insert("a");
        let b = arena.insert("b");
        assert_eq!(arena.get(a), Some(&"a"));
        assert_eq!(arena.get(b), Some(&"b"));
        assert_eq!(arena.len(), 2);
    }

    #[test]
    fn removal_makes_handles_stale() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        assert_eq!(arena.remove(a), Some(1));
        assert_eq!(arena.get(a), None);
        assert_eq!(arena.remove(a), None, "double remove is a no-op");
        let b = arena.insert(2);
        assert_eq!(b.index(), a.index(), "slot is reused");
        assert_ne!(a, b, "generation differs");
        assert_eq!(arena.get(a), None, "stale handle sees nothing");
        assert_eq!(arena.get(b), Some(&2));
    }

    #[test]
    #[should_panic(expected = "stale arena handle")]
    fn indexing_a_stale_handle_panics() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        arena.remove(a);
        let _ = arena[a];
    }

    #[test]
    fn iter_skips_vacant_slots() {
        let mut arena = Arena::new();
        let a = arena.insert(1);
        let _b = arena.insert(2);
        arena.remove(a);
        let live: Vec<i32> = arena.iter().map(|(_, &v)| v).collect();
        assert_eq!(live, vec![2]);
    }

    #[test]
    fn dense_access_on_append_only_arena() {
        let mut arena = Arena::with_capacity(2);
        arena.insert("x");
        arena.insert("y");
        assert_eq!(*arena.dense(1), "y");
    }

    #[test]
    fn heap_bytes_tracks_capacity() {
        let arena: Arena<u64> = Arena::with_capacity(8);
        assert!(arena.heap_bytes() >= 8 * std::mem::size_of::<u64>());
    }
}
