//! Heap-byte accounting for store sections and caches.

/// Types that can report the heap bytes they own.
///
/// Implementations are *shallow by convention for containers of `Copy`
/// payloads* and deep for the store's own section types: every section
/// reports the full allocation it owns, so summing sections never double
/// counts. The blanket `Vec`/`String` impls count the container's own
/// buffer only; a container of owning elements must add the elements
/// itself.
pub trait HeapBytes {
    /// Heap bytes owned by `self` (excluding `size_of::<Self>()` itself).
    fn heap_bytes(&self) -> usize;
}

impl<T> HeapBytes for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
    }
}

impl HeapBytes for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

impl<T: HeapBytes> HeapBytes for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, HeapBytes::heap_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_and_string_report_capacity() {
        let v: Vec<u64> = Vec::with_capacity(4);
        assert_eq!(v.heap_bytes(), 32);
        let s = String::with_capacity(10);
        assert_eq!(s.heap_bytes(), 10);
        assert_eq!(None::<String>.heap_bytes(), 0);
    }
}
