use serde::{Deserialize, Serialize};
use std::fmt;

/// The 3-bit (+body) terminal label on a transistor–net edge.
///
/// Paper, Section II-C: "Each edge connected to a transistor is assigned a
/// three-bit label `l_g l_s l_d`, where `l_g = 1` if the edge from the
/// transistor vertex connects to the net vertex through its gate … similarly
/// `l_s` (`l_d`) are 1 if the transistor connects to the net through its
/// source (drain)". A transistor touching one net through several terminals
/// (e.g. the diode connection in a current mirror, gate+drain = `101`) gets
/// the OR of the bits. Edges at passives carry [`EdgeLabel::NONE`].
///
/// We additionally track a body bit so body-aware matching is possible, but
/// it is excluded from [`EdgeLabel::bits`] and from [`fmt::Display`], which
/// follow the paper's 3-bit convention.
///
/// # Examples
///
/// ```
/// use gana_store::EdgeLabel;
///
/// let diode = EdgeLabel::GATE.union(EdgeLabel::DRAIN);
/// assert_eq!(diode.to_string(), "101");
/// assert!(diode.has_gate() && diode.has_drain() && !diode.has_source());
/// ```
#[derive(
    Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize,
)]
pub struct EdgeLabel(u8);

impl EdgeLabel {
    /// Unlabeled edge (passives, sources).
    pub const NONE: EdgeLabel = EdgeLabel(0);
    /// Gate connection (`l_g`).
    pub const GATE: EdgeLabel = EdgeLabel(0b100);
    /// Source connection (`l_s`).
    pub const SOURCE: EdgeLabel = EdgeLabel(0b010);
    /// Drain connection (`l_d`).
    pub const DRAIN: EdgeLabel = EdgeLabel(0b001);
    /// Body connection (tracked separately from the 3-bit label).
    pub const BODY: EdgeLabel = EdgeLabel(0b1000);

    /// Combines two labels (bitwise OR).
    #[must_use]
    pub fn union(self, other: EdgeLabel) -> EdgeLabel {
        EdgeLabel(self.0 | other.0)
    }

    /// The paper's 3-bit `l_g l_s l_d` value (body excluded), in `0..8`.
    pub fn bits(self) -> u8 {
        self.0 & 0b111
    }

    /// Raw bits including the body flag.
    pub fn raw(self) -> u8 {
        self.0
    }

    /// True if the gate bit is set.
    pub fn has_gate(self) -> bool {
        self.0 & Self::GATE.0 != 0
    }

    /// True if the source bit is set.
    pub fn has_source(self) -> bool {
        self.0 & Self::SOURCE.0 != 0
    }

    /// True if the drain bit is set.
    pub fn has_drain(self) -> bool {
        self.0 & Self::DRAIN.0 != 0
    }

    /// True if the body bit is set.
    pub fn has_body(self) -> bool {
        self.0 & Self::BODY.0 != 0
    }

    /// True if the label touches the channel (source or drain, not only gate).
    pub fn touches_channel(self) -> bool {
        self.has_source() || self.has_drain()
    }

    /// A label equivalent to `self` with source and drain swapped.
    ///
    /// MOS devices are symmetric in source/drain for recognition purposes;
    /// the VF2 semantic check accepts a pattern label if it matches the
    /// target label either directly or swapped.
    #[must_use]
    pub fn swap_source_drain(self) -> EdgeLabel {
        let mut out = self.0 & !0b011;
        if self.has_source() {
            out |= Self::DRAIN.0;
        }
        if self.has_drain() {
            out |= Self::SOURCE.0;
        }
        EdgeLabel(out)
    }

    /// Number of set terminal bits (body included).
    pub fn terminal_count(self) -> u32 {
        self.0.count_ones()
    }
}

impl fmt::Display for EdgeLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            u8::from(self.has_gate()),
            u8::from(self.has_source()),
            u8::from(self.has_drain())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_matches_paper_convention() {
        assert_eq!(EdgeLabel::GATE.to_string(), "100");
        assert_eq!(EdgeLabel::SOURCE.to_string(), "010");
        assert_eq!(EdgeLabel::DRAIN.to_string(), "001");
        assert_eq!(EdgeLabel::GATE.union(EdgeLabel::DRAIN).to_string(), "101");
        assert_eq!(EdgeLabel::NONE.to_string(), "000");
    }

    #[test]
    fn body_is_excluded_from_bits() {
        let l = EdgeLabel::BODY.union(EdgeLabel::SOURCE);
        assert_eq!(l.bits(), 0b010);
        assert!(l.has_body());
        assert_eq!(l.to_string(), "010");
    }

    #[test]
    fn swap_source_drain_behaviour() {
        let sd = EdgeLabel::SOURCE;
        assert_eq!(sd.swap_source_drain(), EdgeLabel::DRAIN);
        let gd = EdgeLabel::GATE.union(EdgeLabel::DRAIN);
        assert_eq!(
            gd.swap_source_drain(),
            EdgeLabel::GATE.union(EdgeLabel::SOURCE)
        );
        let both = EdgeLabel::SOURCE.union(EdgeLabel::DRAIN);
        assert_eq!(both.swap_source_drain(), both);
    }

    #[test]
    fn terminal_count() {
        assert_eq!(EdgeLabel::NONE.terminal_count(), 0);
        assert_eq!(EdgeLabel::GATE.union(EdgeLabel::DRAIN).terminal_count(), 2);
    }
}
