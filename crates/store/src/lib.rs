//! Arena-backed unified circuit store.
//!
//! One allocation domain for everything the annotation pipeline derives
//! from a netlist: the bipartite circuit graph (paper Section II-C), the
//! channel-connected components (Postprocessing I), the GNN coarsening
//! permutation, and the recognized hierarchy. Downstream crates read the
//! store through dense vertex ids (fast paths) or generational handles
//! (stale-access detection), and `heap_bytes` gives an exact per-section
//! account of resident memory per design.

#![warn(missing_docs)]

mod arena;
mod bytes;
mod label;
mod store;

pub use arena::{Arena, Handle};
pub use bytes::HeapBytes;
pub use label::EdgeLabel;
pub use store::{
    CccSection, CircuitStore, CoarsenSection, DeviceEntry, GraphOptions, HierKind, HierNodeId,
    HierarchySlab, NameSpan, NetEntry, Rail, StoreBytes, StrArena, NO_VERTEX,
};
