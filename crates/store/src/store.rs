//! The unified circuit store: one allocation domain for the bipartite
//! graph, CCC decomposition, coarsening maps, and hierarchy slab.
//!
//! A [`CircuitStore`] is built once per (flattened) circuit and then read
//! through dense vertex ids or generational handles. All strings live in a
//! single [`StrArena`]; adjacency is a flat CSR (offset table plus one edge
//! slab); lazily computed sections (CCC) and recorded sections (coarsening,
//! hierarchy) append to the same domain, so `heap_bytes` is an exact
//! per-section account of what the pipeline keeps resident per design.

use crate::arena::{Arena, Handle};
use crate::bytes::HeapBytes;
use crate::label::EdgeLabel;
use gana_netlist::{Circuit, DeviceKind, MosTerminal};
use std::sync::OnceLock;

/// Options controlling graph construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphOptions {
    /// Include MOS body terminals as (body-labeled) edges. The paper's
    /// figures omit body connections; default `false`.
    pub include_body: bool,
    /// Include supply/ground nets as vertices. The paper's graphs include
    /// them (Fig. 3 shows `vdd!` and `gnd!`); default `true`.
    pub include_supply_nets: bool,
}

impl Default for GraphOptions {
    fn default() -> Self {
        GraphOptions {
            include_body: false,
            include_supply_nets: true,
        }
    }
}

/// Rail classification of a net, captured once at store build time so the
/// hot paths (CCC, incremental splicing) never re-derive it from strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rail {
    /// An ordinary signal net.
    Signal,
    /// A global supply (vdd!, vcc, …) or a net labeled `Supply`.
    Supply,
    /// A global ground (gnd!, 0, vss, …) or a net labeled `Ground`.
    Ground,
}

impl Rail {
    /// True for supply or ground nets.
    pub fn is_rail(self) -> bool {
        self != Rail::Signal
    }
}

/// A span into a [`StrArena`]'s backing buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NameSpan {
    start: u32,
    end: u32,
}

/// An append-only string slab: every interned name is a [`NameSpan`] into
/// one backing `String`, so a store holds exactly one allocation for all
/// device, net, and hierarchy names.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StrArena {
    buf: String,
}

impl StrArena {
    /// An empty arena.
    pub fn new() -> StrArena {
        StrArena::default()
    }

    /// An empty arena with room for `bytes` of name data.
    pub fn with_capacity(bytes: usize) -> StrArena {
        StrArena {
            buf: String::with_capacity(bytes),
        }
    }

    /// Appends `s` and returns its span. Interning is append-only: equal
    /// strings interned twice get distinct spans.
    pub fn intern(&mut self, s: &str) -> NameSpan {
        let start = u32::try_from(self.buf.len()).expect("name arena fits u32");
        self.buf.push_str(s);
        NameSpan {
            start,
            end: u32::try_from(self.buf.len()).expect("name arena fits u32"),
        }
    }

    /// The string behind a span.
    pub fn resolve(&self, span: NameSpan) -> &str {
        &self.buf[span.start as usize..span.end as usize]
    }

    /// Total bytes of interned name data.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Heap bytes of the backing buffer.
    pub fn heap_bytes(&self) -> usize {
        self.buf.heap_bytes()
    }
}

/// An element vertex payload: the device's name, its index in the source
/// circuit's device list, and its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceEntry {
    /// Device name span in the store's name arena.
    pub name: NameSpan,
    /// Index into the source circuit's device list.
    pub device_index: u32,
    /// The element kind.
    pub kind: DeviceKind,
}

/// A net vertex payload: the net's name and its rail classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEntry {
    /// Net name span in the store's name arena.
    pub name: NameSpan,
    /// Rail classification captured at build time.
    pub rail: Rail,
}

/// Channel-connected components in CSR form: group `g` owns
/// `transistors(g)` element vertices and `nets(g)` joining net vertices,
/// ordered largest-first exactly like
/// `gana_graph::ccc::channel_connected_components`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CccSection {
    transistor_offsets: Vec<u32>,
    net_offsets: Vec<u32>,
    transistors: Vec<u32>,
    nets: Vec<u32>,
}

impl CccSection {
    /// Number of components.
    pub fn group_count(&self) -> usize {
        self.transistor_offsets.len().saturating_sub(1)
    }

    /// Member transistor vertex ids of group `g`, ascending.
    pub fn transistors(&self, g: usize) -> &[u32] {
        let (a, b) = (
            self.transistor_offsets[g] as usize,
            self.transistor_offsets[g + 1] as usize,
        );
        &self.transistors[a..b]
    }

    /// Joining channel-net vertex ids of group `g`, ascending.
    pub fn nets(&self, g: usize) -> &[u32] {
        let (a, b) = (
            self.net_offsets[g] as usize,
            self.net_offsets[g + 1] as usize,
        );
        &self.nets[a..b]
    }

    /// Heap bytes of the four CSR slabs.
    pub fn heap_bytes(&self) -> usize {
        self.transistor_offsets.heap_bytes()
            + self.net_offsets.heap_bytes()
            + self.transistors.heap_bytes()
            + self.nets.heap_bytes()
    }
}

/// Sentinel for "no original vertex" in a coarsening permutation slot
/// (fake vertices added by Graclus padding).
pub const NO_VERTEX: u32 = u32::MAX;

/// The coarsening permutation recorded after GNN preparation: how original
/// graph vertices map to padded pooling slots across levels.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CoarsenSection {
    /// Number of coarsening levels.
    pub levels: usize,
    /// Number of vertices in the original graph.
    pub n_original: usize,
    /// Padded level-0 size (power-of-two multiple of the cluster tree).
    pub padded_size: usize,
    /// `perm[slot]` = original vertex id, or [`NO_VERTEX`] for fakes.
    pub perm: Vec<u32>,
    /// `inverse_perm[v]` = padded slot of original vertex `v`.
    pub inverse_perm: Vec<u32>,
    /// Vertex count at each coarsening level, finest first.
    pub level_sizes: Vec<u32>,
}

impl CoarsenSection {
    /// Heap bytes of the permutation slabs.
    pub fn heap_bytes(&self) -> usize {
        self.perm.heap_bytes() + self.inverse_perm.heap_bytes() + self.level_sizes.heap_bytes()
    }
}

/// Hierarchy node kinds, mirroring `gana_core::hierarchy::NodeKind`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HierKind {
    /// The whole design.
    System,
    /// A recognized sub-block.
    SubBlock,
    /// A stand-alone primitive promoted to block level.
    Primitive,
    /// A leaf circuit element.
    Element,
}

/// Id of a node within a [`HierarchySlab`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct HierNodeId(u32);

impl HierNodeId {
    /// Dense index of the node.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct HierNode {
    name: NameSpan,
    kind: HierKind,
    label: Option<NameSpan>,
    children_start: u32,
    children_end: u32,
}

/// The design hierarchy stored flat: nodes in one slab, children as
/// contiguous ranges into one child-id slab, names interned in the store's
/// arena style. Built bottom-up (children before parents).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HierarchySlab {
    names: StrArena,
    nodes: Vec<HierNode>,
    children: Vec<u32>,
    root: Option<u32>,
}

impl HierarchySlab {
    /// An empty slab.
    pub fn new() -> HierarchySlab {
        HierarchySlab::default()
    }

    /// Appends a node whose children (already added) are `kids`.
    pub fn add(
        &mut self,
        name: &str,
        kind: HierKind,
        label: Option<&str>,
        kids: &[HierNodeId],
    ) -> HierNodeId {
        let children_start = u32::try_from(self.children.len()).expect("hierarchy fits u32");
        self.children.extend(kids.iter().map(|k| k.0));
        let children_end = u32::try_from(self.children.len()).expect("hierarchy fits u32");
        let node = HierNode {
            name: self.names.intern(name),
            kind,
            label: label.map(|l| self.names.intern(l)),
            children_start,
            children_end,
        };
        let id = u32::try_from(self.nodes.len()).expect("hierarchy fits u32");
        self.nodes.push(node);
        HierNodeId(id)
    }

    /// Marks `id` as the root node.
    pub fn set_root(&mut self, id: HierNodeId) {
        self.root = Some(id.0);
    }

    /// The root node, if one was set.
    pub fn root(&self) -> Option<HierNodeId> {
        self.root.map(HierNodeId)
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// The node's display name.
    pub fn name(&self, id: HierNodeId) -> &str {
        self.names.resolve(self.nodes[id.index()].name)
    }

    /// The node's kind.
    pub fn kind(&self, id: HierNodeId) -> HierKind {
        self.nodes[id.index()].kind
    }

    /// The node's recognized label, if any.
    pub fn label(&self, id: HierNodeId) -> Option<&str> {
        self.nodes[id.index()]
            .label
            .map(|span| self.names.resolve(span))
    }

    /// The node's children in insertion order.
    pub fn children(&self, id: HierNodeId) -> impl Iterator<Item = HierNodeId> + '_ {
        let node = &self.nodes[id.index()];
        self.children[node.children_start as usize..node.children_end as usize]
            .iter()
            .map(|&c| HierNodeId(c))
    }

    /// Heap bytes of the node, child, and name slabs.
    pub fn heap_bytes(&self) -> usize {
        self.names.heap_bytes() + self.nodes.heap_bytes() + self.children.heap_bytes()
    }
}

/// Per-section heap-byte breakdown of a [`CircuitStore`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreBytes {
    /// Interned name bytes (device + net names).
    pub names: usize,
    /// Device slab plus the name-sorted lookup index.
    pub devices: usize,
    /// Net slab.
    pub nets: usize,
    /// CSR adjacency (offset table + edge slab).
    pub adjacency: usize,
    /// Cached CCC section (0 until first computed).
    pub ccc: usize,
    /// Recorded coarsening section (0 until recorded).
    pub coarsen: usize,
    /// Recorded hierarchy slab (0 until recorded).
    pub hierarchy: usize,
}

impl StoreBytes {
    /// Sum over all sections.
    pub fn total(&self) -> usize {
        self.names
            + self.devices
            + self.nets
            + self.adjacency
            + self.ccc
            + self.coarsen
            + self.hierarchy
    }
}

/// The unified circuit store: element and net vertices in generational
/// arenas, flat CSR adjacency, and the downstream sections (CCC,
/// coarsening, hierarchy) in the same allocation domain.
///
/// Vertex numbering matches the paper's bipartite convention: vertices
/// `0..element_count()` are elements in device-list order, vertices
/// `element_count()..vertex_count()` are kept nets in sorted-name order.
#[derive(Debug, Clone)]
pub struct CircuitStore {
    names: StrArena,
    devices: Arena<DeviceEntry>,
    nets: Arena<NetEntry>,
    /// Element vertex ids sorted by (name, id): binary-search device lookup
    /// with first-declaration wins on (pathological) duplicate names.
    devices_by_name: Vec<u32>,
    /// CSR row offsets, `vertex_count() + 1` entries.
    offsets: Vec<u32>,
    /// CSR edge slab; each row sorted by (neighbor, label).
    edges: Vec<(usize, EdgeLabel)>,
    element_count: usize,
    edge_count: usize,
    options: GraphOptions,
    ccc: OnceLock<CccSection>,
    coarsen: Option<CoarsenSection>,
    hierarchy: Option<HierarchySlab>,
}

impl PartialEq for CircuitStore {
    fn eq(&self, other: &CircuitStore) -> bool {
        // The lazy CCC cache is excluded: two identically built stores are
        // equal whether or not either has computed its CCCs yet.
        self.names == other.names
            && self.devices == other.devices
            && self.nets == other.nets
            && self.devices_by_name == other.devices_by_name
            && self.offsets == other.offsets
            && self.edges == other.edges
            && self.element_count == other.element_count
            && self.edge_count == other.edge_count
            && self.options == other.options
            && self.coarsen == other.coarsen
            && self.hierarchy == other.hierarchy
    }
}

impl CircuitStore {
    /// Builds the store for a flattened `circuit`.
    ///
    /// Devices of kind [`DeviceKind::Instance`] are skipped; nets are
    /// collected from ports and every device terminal, sorted by name,
    /// rail-classified once, and dropped when
    /// `!options.include_supply_nets` marks them as rails. A transistor
    /// touching a net through several terminals yields one edge whose
    /// label is the OR of the terminal bits.
    pub fn build(circuit: &Circuit, options: GraphOptions) -> CircuitStore {
        let source = circuit.devices();

        // Pass A: element vertices in device order.
        let mut element_devices: Vec<u32> = Vec::new();
        let mut name_bytes = 0usize;
        for (i, d) in source.iter().enumerate() {
            if d.kind() == DeviceKind::Instance {
                continue;
            }
            element_devices.push(i as u32);
            name_bytes += d.name().len();
        }
        let element_count = element_devices.len();

        // Pass B: net names sorted + deduped without cloning, then rail
        // classified; `net_vertex_of[i]` maps the i-th sorted name to its
        // vertex id or NO_VERTEX when the rail is dropped.
        let all_nets = circuit.net_refs();
        let mut kept = 0usize;
        let mut net_vertex_of: Vec<u32> = Vec::with_capacity(all_nets.len());
        let mut rails: Vec<Rail> = Vec::with_capacity(all_nets.len());
        for &net in &all_nets {
            let rail = if circuit.is_supply(net) {
                Rail::Supply
            } else if circuit.is_ground(net) {
                Rail::Ground
            } else {
                Rail::Signal
            };
            rails.push(rail);
            if options.include_supply_nets || !rail.is_rail() {
                net_vertex_of.push((element_count + kept) as u32);
                kept += 1;
                name_bytes += net.len();
            } else {
                net_vertex_of.push(NO_VERTEX);
            }
        }

        let mut names = StrArena::with_capacity(name_bytes);
        let mut devices = Arena::with_capacity(element_count);
        for &i in &element_devices {
            let d = &source[i as usize];
            devices.insert(DeviceEntry {
                name: names.intern(d.name()),
                device_index: i,
                kind: d.kind(),
            });
        }
        let mut nets = Arena::with_capacity(kept);
        for (i, &net) in all_nets.iter().enumerate() {
            if net_vertex_of[i] != NO_VERTEX {
                nets.insert(NetEntry {
                    name: names.intern(net),
                    rail: rails[i],
                });
            }
        }
        let vertex_count = element_count + kept;

        // Pass C: merge per-device (net, label) pairs, count degrees, then
        // fill the CSR slab in both directions and sort each row.
        let mut pairs: Vec<(u32, u32, EdgeLabel)> = Vec::new();
        let mut merged: Vec<(u32, EdgeLabel)> = Vec::with_capacity(4);
        let net_vertex = |net: &str| -> u32 {
            match all_nets.binary_search(&net) {
                Ok(i) => net_vertex_of[i],
                Err(_) => NO_VERTEX,
            }
        };
        for (ev, &device_index) in element_devices.iter().enumerate() {
            let d = &source[device_index as usize];
            merged.clear();
            let mut merge = |nv: u32, bit: EdgeLabel| {
                if nv == NO_VERTEX {
                    return;
                }
                match merged.iter_mut().find(|(v, _)| *v == nv) {
                    Some((_, l)) => *l = l.union(bit),
                    None => merged.push((nv, bit)),
                }
            };
            if d.kind().is_transistor() {
                let terms = [
                    (MosTerminal::Drain, EdgeLabel::DRAIN),
                    (MosTerminal::Gate, EdgeLabel::GATE),
                    (MosTerminal::Source, EdgeLabel::SOURCE),
                    (MosTerminal::Body, EdgeLabel::BODY),
                ];
                for (term, bit) in terms {
                    if term == MosTerminal::Body && !options.include_body {
                        continue;
                    }
                    let net = d.mos_terminal(term).expect("transistor terminal");
                    merge(net_vertex(net), bit);
                }
            } else {
                for net in d.terminals() {
                    merge(net_vertex(net), EdgeLabel::NONE);
                }
            }
            pairs.extend(merged.iter().map(|&(nv, l)| (ev as u32, nv, l)));
        }
        let edge_count = pairs.len();

        let mut offsets: Vec<u32> = vec![0; vertex_count + 1];
        for &(ev, nv, _) in &pairs {
            offsets[ev as usize + 1] += 1;
            offsets[nv as usize + 1] += 1;
        }
        for i in 0..vertex_count {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor: Vec<u32> = offsets[..vertex_count].to_vec();
        let mut edges: Vec<(usize, EdgeLabel)> = vec![(0, EdgeLabel::NONE); 2 * edge_count];
        for &(ev, nv, l) in &pairs {
            edges[cursor[ev as usize] as usize] = (nv as usize, l);
            cursor[ev as usize] += 1;
            edges[cursor[nv as usize] as usize] = (ev as usize, l);
            cursor[nv as usize] += 1;
        }
        for v in 0..vertex_count {
            edges[offsets[v] as usize..offsets[v + 1] as usize]
                .sort_unstable_by_key(|&(u, l)| (u, l));
        }

        let mut devices_by_name: Vec<u32> = (0..element_count as u32).collect();
        devices_by_name.sort_by_key(|&v| (names.resolve(devices.dense(v as usize).name), v));

        CircuitStore {
            names,
            devices,
            nets,
            devices_by_name,
            offsets,
            edges,
            element_count,
            edge_count,
            options,
            ccc: OnceLock::new(),
            coarsen: None,
            hierarchy: None,
        }
    }

    /// Total number of vertices `|Ve| + |Vn|`.
    pub fn vertex_count(&self) -> usize {
        self.element_count + self.nets.len()
    }

    /// Number of element vertices `|Ve|`.
    pub fn element_count(&self) -> usize {
        self.element_count
    }

    /// Number of net vertices `|Vn|`.
    pub fn net_count(&self) -> usize {
        self.nets.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// The options the store was built with.
    pub fn options(&self) -> GraphOptions {
        self.options
    }

    /// Neighbors of `v` with edge labels, sorted by (neighbor, label).
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn neighbors(&self, v: usize) -> &[(usize, EdgeLabel)] {
        &self.edges[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of bounds.
    pub fn degree(&self, v: usize) -> usize {
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// The label of the edge between `a` and `b`, if present (binary search
    /// over `a`'s sorted row).
    pub fn edge_label(&self, a: usize, b: usize) -> Option<EdgeLabel> {
        let row = self.neighbors(a);
        row.binary_search_by_key(&b, |&(u, _)| u)
            .ok()
            .map(|i| row[i].1)
    }

    /// The element entry behind vertex `v`, or `None` for net vertices.
    pub fn element(&self, v: usize) -> Option<&DeviceEntry> {
        (v < self.element_count).then(|| self.devices.dense(v))
    }

    /// The net entry behind vertex `v`, or `None` for element vertices.
    pub fn net(&self, v: usize) -> Option<&NetEntry> {
        (v >= self.element_count && v < self.vertex_count())
            .then(|| self.nets.dense(v - self.element_count))
    }

    /// The device name behind an element vertex, or `None` for a net vertex.
    pub fn device_name(&self, v: usize) -> Option<&str> {
        self.element(v).map(|e| self.names.resolve(e.name))
    }

    /// The net name behind a net vertex, or `None` for an element vertex.
    pub fn net_name(&self, v: usize) -> Option<&str> {
        self.net(v).map(|n| self.names.resolve(n.name))
    }

    /// The device kind of an element vertex, or `None` for nets.
    pub fn element_kind(&self, v: usize) -> Option<DeviceKind> {
        self.element(v).map(|e| e.kind)
    }

    /// The index into the source circuit's device list for an element vertex.
    pub fn device_index(&self, v: usize) -> Option<usize> {
        self.element(v).map(|e| e.device_index as usize)
    }

    /// The rail classification of a net vertex, or `None` for elements.
    pub fn rail(&self, v: usize) -> Option<Rail> {
        self.net(v).map(|n| n.rail)
    }

    /// The vertex id of a net, if the net exists in the store (binary
    /// search over the sorted net slab).
    pub fn net_vertex(&self, net: &str) -> Option<usize> {
        let n = self.nets.len();
        let (mut lo, mut hi) = (0usize, n);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if self.names.resolve(self.nets.dense(mid).name) < net {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        (lo < n && self.names.resolve(self.nets.dense(lo).name) == net)
            .then_some(self.element_count + lo)
    }

    /// The vertex id of a device by name, if present (binary search; the
    /// lowest vertex id wins when names repeat).
    pub fn element_vertex(&self, device: &str) -> Option<usize> {
        let idx = self
            .devices_by_name
            .partition_point(|&v| self.names.resolve(self.devices.dense(v as usize).name) < device);
        let &v = self.devices_by_name.get(idx)?;
        (self.names.resolve(self.devices.dense(v as usize).name) == device).then_some(v as usize)
    }

    /// The generational handle of an element vertex.
    pub fn element_handle(&self, v: usize) -> Option<Handle<DeviceEntry>> {
        (v < self.element_count)
            .then(|| self.devices.handle_at(v))
            .flatten()
    }

    /// The generational handle of a net vertex.
    pub fn net_handle(&self, v: usize) -> Option<Handle<NetEntry>> {
        (v >= self.element_count && v < self.vertex_count())
            .then(|| self.nets.handle_at(v - self.element_count))
            .flatten()
    }

    /// The device arena (handle-based access).
    pub fn devices(&self) -> &Arena<DeviceEntry> {
        &self.devices
    }

    /// The net arena (handle-based access).
    pub fn nets(&self) -> &Arena<NetEntry> {
        &self.nets
    }

    /// Resolves a name span against the store's name arena.
    pub fn resolve(&self, span: NameSpan) -> &str {
        self.names.resolve(span)
    }

    /// The channel-connected components, computed on first use from the
    /// build-time rail classification and cached in the store.
    pub fn ccc(&self) -> &CccSection {
        self.ccc.get_or_init(|| self.compute_ccc())
    }

    /// The cached CCC section, if it has been computed.
    pub fn ccc_if_computed(&self) -> Option<&CccSection> {
        self.ccc.get()
    }

    fn compute_ccc(&self) -> CccSection {
        let n = self.vertex_count();
        let ec = self.element_count;
        let mut parent: Vec<u32> = (0..n as u32).collect();
        fn find(parent: &mut [u32], mut x: u32) -> u32 {
            while parent[x as usize] != x {
                parent[x as usize] = parent[parent[x as usize] as usize];
                x = parent[x as usize];
            }
            x
        }

        // Two transistors join a CCC when they share a non-rail net through
        // source/drain terminals; chaining consecutive channel users of a
        // net reproduces the seed's window-union exactly.
        for nv in ec..n {
            if self.nets.dense(nv - ec).rail.is_rail() {
                continue;
            }
            let mut prev: Option<u32> = None;
            for &(ev, label) in self.neighbors(nv) {
                if !label.touches_channel() {
                    continue;
                }
                if let Some(p) = prev {
                    let (ra, rb) = (find(&mut parent, p), find(&mut parent, ev as u32));
                    if ra != rb {
                        parent[ra as usize] = rb;
                    }
                }
                prev = Some(ev as u32);
            }
        }

        // Group transistors by root in first-seen order, then nets by the
        // root of their first channel user.
        let mut root_group: Vec<u32> = vec![NO_VERTEX; n];
        let mut group_transistors: Vec<Vec<u32>> = Vec::new();
        for ev in 0..ec {
            if !self.devices.dense(ev).kind.is_transistor() {
                continue;
            }
            let root = find(&mut parent, ev as u32) as usize;
            let g = if root_group[root] == NO_VERTEX {
                root_group[root] = group_transistors.len() as u32;
                group_transistors.push(Vec::new());
                group_transistors.len() - 1
            } else {
                root_group[root] as usize
            };
            group_transistors[g].push(ev as u32);
        }
        let mut group_nets: Vec<Vec<u32>> = vec![Vec::new(); group_transistors.len()];
        for nv in ec..n {
            if self.nets.dense(nv - ec).rail.is_rail() {
                continue;
            }
            let first = self
                .neighbors(nv)
                .iter()
                .find(|&&(_, label)| label.touches_channel());
            if let Some(&(ev, _)) = first {
                let root = find(&mut parent, ev as u32) as usize;
                let g = root_group[root];
                if g != NO_VERTEX {
                    group_nets[g as usize].push(nv as u32);
                }
            }
        }

        // Order: largest first, ties by ascending transistor lists.
        let mut order: Vec<usize> = (0..group_transistors.len()).collect();
        order.sort_by(|&a, &b| {
            group_transistors[b]
                .len()
                .cmp(&group_transistors[a].len())
                .then_with(|| group_transistors[a].cmp(&group_transistors[b]))
        });

        let mut section = CccSection {
            transistor_offsets: Vec::with_capacity(order.len() + 1),
            net_offsets: Vec::with_capacity(order.len() + 1),
            transistors: Vec::new(),
            nets: Vec::new(),
        };
        section.transistor_offsets.push(0);
        section.net_offsets.push(0);
        for &g in &order {
            section.transistors.extend_from_slice(&group_transistors[g]);
            section.nets.extend_from_slice(&group_nets[g]);
            section
                .transistor_offsets
                .push(section.transistors.len() as u32);
            section.net_offsets.push(section.nets.len() as u32);
        }
        section
    }

    /// Records the coarsening section produced by GNN preparation.
    pub fn record_coarsening(&mut self, section: CoarsenSection) {
        self.coarsen = Some(section);
    }

    /// The recorded coarsening section, if any.
    pub fn coarsening(&self) -> Option<&CoarsenSection> {
        self.coarsen.as_ref()
    }

    /// Records the hierarchy slab produced after postprocessing.
    pub fn record_hierarchy(&mut self, slab: HierarchySlab) {
        self.hierarchy = Some(slab);
    }

    /// The recorded hierarchy slab, if any.
    pub fn hierarchy(&self) -> Option<&HierarchySlab> {
        self.hierarchy.as_ref()
    }

    /// Per-section heap-byte breakdown.
    pub fn bytes(&self) -> StoreBytes {
        StoreBytes {
            names: self.names.heap_bytes(),
            devices: self.devices.heap_bytes() + self.devices_by_name.heap_bytes(),
            nets: self.nets.heap_bytes(),
            adjacency: self.offsets.heap_bytes() + self.edges.heap_bytes(),
            ccc: self.ccc.get().map_or(0, CccSection::heap_bytes),
            coarsen: self.coarsen.as_ref().map_or(0, CoarsenSection::heap_bytes),
            hierarchy: self.hierarchy.as_ref().map_or(0, HierarchySlab::heap_bytes),
        }
    }

    /// Total heap bytes across every section.
    pub fn heap_bytes(&self) -> usize {
        self.bytes().total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gana_netlist::parse;

    fn mirror() -> Circuit {
        parse("M0 d1 d1 s s NMOS\nM1 d2 d1 s s NMOS\n").expect("valid")
    }

    #[test]
    fn build_counts_and_order() {
        let s = CircuitStore::build(&mirror(), GraphOptions::default());
        assert_eq!(s.element_count(), 2);
        assert_eq!(s.net_count(), 3);
        assert_eq!(s.vertex_count(), 5);
        assert_eq!(s.edge_count(), 5);
        assert_eq!(s.device_name(0), Some("M0"));
        assert_eq!(s.device_name(1), Some("M1"));
        assert_eq!(s.net_name(2), Some("d1"));
        assert_eq!(s.net_name(3), Some("d2"));
        assert_eq!(s.net_name(4), Some("s"));
    }

    #[test]
    fn figure2_labels() {
        let s = CircuitStore::build(&mirror(), GraphOptions::default());
        let m0 = s.element_vertex("M0").expect("exists");
        let d1 = s.net_vertex("d1").expect("exists");
        assert_eq!(s.edge_label(m0, d1).expect("edge").to_string(), "101");
        let m1 = s.element_vertex("M1").expect("exists");
        let d2 = s.net_vertex("d2").expect("exists");
        assert_eq!(s.edge_label(m1, d2).expect("edge").to_string(), "001");
        assert_eq!(s.edge_label(m0, d2), None);
    }

    #[test]
    fn rails_are_classified_at_build() {
        let c = parse("M0 out in vdd! vdd! PMOS\nM1 out in gnd! gnd! NMOS\n").expect("valid");
        let s = CircuitStore::build(&c, GraphOptions::default());
        let vdd = s.net_vertex("vdd!").expect("kept by default");
        let gnd = s.net_vertex("gnd!").expect("kept by default");
        let out = s.net_vertex("out").expect("signal");
        assert_eq!(s.rail(vdd), Some(Rail::Supply));
        assert_eq!(s.rail(gnd), Some(Rail::Ground));
        assert_eq!(s.rail(out), Some(Rail::Signal));
        assert_eq!(s.rail(0), None, "elements have no rail");
    }

    #[test]
    fn supply_nets_can_be_dropped() {
        let c = parse("M0 out in vdd! vdd! PMOS\n").expect("valid");
        let s = CircuitStore::build(
            &c,
            GraphOptions {
                include_supply_nets: false,
                ..GraphOptions::default()
            },
        );
        assert!(s.net_vertex("vdd!").is_none());
        assert!(s.net_vertex("out").is_some());
        assert_eq!(s.degree(0), 2, "drain+gate nets only");
    }

    #[test]
    fn neighbors_are_sorted_and_bipartite() {
        let c = parse("M1 a b c c NMOS\nM2 d b c c NMOS\nR1 a d 1k\n").expect("valid");
        let s = CircuitStore::build(&c, GraphOptions::default());
        for v in 0..s.vertex_count() {
            let row = s.neighbors(v);
            assert!(row.windows(2).all(|w| w[0] <= w[1]), "row sorted");
            for &(u, _) in row {
                assert_ne!(
                    u < s.element_count(),
                    v < s.element_count(),
                    "edges join an element and a net"
                );
            }
        }
    }

    #[test]
    fn ccc_differential_pair_is_one_group() {
        let c = parse(
            "M1 o1 in1 tail gnd! NMOS\nM2 o2 in2 tail gnd! NMOS\nM5 tail vb gnd! gnd! NMOS\n",
        )
        .expect("valid");
        let s = CircuitStore::build(&c, GraphOptions::default());
        let ccc = s.ccc();
        assert_eq!(ccc.group_count(), 1);
        assert_eq!(ccc.transistors(0).len(), 3, "tail joins all three");
        let tail = s.net_vertex("tail").expect("exists") as u32;
        assert!(ccc.nets(0).contains(&tail));
        let gnd = s.net_vertex("gnd!").expect("exists") as u32;
        assert!(!ccc.nets(0).contains(&gnd), "rails never join");
    }

    #[test]
    fn ccc_gate_connections_do_not_join() {
        let c = parse("M1 d1 in gnd! gnd! NMOS\nM2 d2 d1 gnd! gnd! NMOS\n").expect("valid");
        let s = CircuitStore::build(&c, GraphOptions::default());
        assert_eq!(s.ccc().group_count(), 2);
    }

    #[test]
    fn handles_resolve_to_entries() {
        let s = CircuitStore::build(&mirror(), GraphOptions::default());
        let h = s.element_handle(1).expect("live");
        assert_eq!(s.resolve(s.devices()[h].name), "M1");
        let nh = s.net_handle(3).expect("live");
        assert_eq!(s.resolve(s.nets()[nh].name), "d2");
        assert!(s.element_handle(2).is_none(), "net id is not an element");
    }

    #[test]
    fn identical_builds_are_equal() {
        let a = CircuitStore::build(&mirror(), GraphOptions::default());
        let b = CircuitStore::build(&mirror(), GraphOptions::default());
        assert_eq!(a, b);
        a.ccc();
        assert_eq!(a, b, "lazy CCC cache does not affect equality");
    }

    #[test]
    fn heap_bytes_breakdown_accumulates() {
        let mut s = CircuitStore::build(&mirror(), GraphOptions::default());
        let before = s.bytes();
        assert!(before.names > 0 && before.adjacency > 0);
        assert_eq!(before.ccc, 0);
        s.ccc();
        assert!(s.bytes().ccc > 0, "cached CCC is accounted");
        let mut slab = HierarchySlab::new();
        let leaf = slab.add("M0", HierKind::Element, None, &[]);
        let root = slab.add("top", HierKind::System, Some("ota"), &[leaf]);
        slab.set_root(root);
        assert_eq!(slab.name(root), "top");
        assert_eq!(slab.label(root), Some("ota"));
        assert_eq!(
            slab.children(root).map(|c| c.index()).collect::<Vec<_>>(),
            vec![leaf.index()]
        );
        s.record_hierarchy(slab);
        assert!(s.bytes().hierarchy > 0);
        assert_eq!(s.heap_bytes(), s.bytes().total());
    }
}
