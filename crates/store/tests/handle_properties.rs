//! Property tests for generational-handle stability.
//!
//! The arena's contract is that a live handle keeps resolving to the exact
//! value it was issued for across any interleaving of inserts and removes
//! (edit/splice sequences), and that a removed handle never resolves again
//! — even after its slot is reused by a later insert.

use gana_store::{Arena, CircuitStore, GraphOptions, Handle};
use proptest::prelude::*;

/// One step of an edit/splice sequence over the arena.
#[derive(Debug, Clone)]
enum Op {
    /// Insert a fresh value.
    Insert(u64),
    /// Remove the k-th currently-live handle (modulo live count).
    Remove(usize),
}

/// 3:2 insert/remove mix, encoded as a tuple strategy (the vendored
/// proptest stub has no `prop_oneof`).
fn op_strategy() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<u64>(), any::<usize>()).prop_map(|(tag, value, k)| {
        if tag % 5 < 3 {
            Op::Insert(value)
        } else {
            Op::Remove(k)
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every live handle resolves to the value it was issued for after
    /// every step; every removed handle stays dead even when its slot is
    /// recycled.
    #[test]
    fn handles_survive_arbitrary_edit_sequences(ops in prop::collection::vec(op_strategy(), 1..120)) {
        let mut arena: Arena<u64> = Arena::new();
        let mut live: Vec<(Handle<u64>, u64)> = Vec::new();
        let mut dead: Vec<Handle<u64>> = Vec::new();

        for op in ops {
            match op {
                Op::Insert(value) => {
                    let handle = arena.insert(value);
                    live.push((handle, value));
                }
                Op::Remove(k) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (handle, value) = live.swap_remove(k % live.len());
                    prop_assert_eq!(arena.remove(handle), Some(value));
                    dead.push(handle);
                }
            }
            prop_assert_eq!(arena.len(), live.len());
            for &(handle, value) in &live {
                prop_assert_eq!(arena.get(handle), Some(&value), "live handle content drifted");
                prop_assert_eq!(
                    arena.handle_at(handle.index()),
                    Some(handle),
                    "handle_at must reproduce the live handle"
                );
            }
            for &handle in &dead {
                prop_assert!(
                    arena.get(handle).is_none(),
                    "a removed handle resolved (slot reuse must bump the generation)"
                );
                prop_assert!(!arena.contains(handle));
            }
        }

        // Iteration visits exactly the live set.
        let mut seen: Vec<u64> = arena.iter().map(|(_, &v)| v).collect();
        let mut expect: Vec<u64> = live.iter().map(|&(_, v)| v).collect();
        seen.sort_unstable();
        expect.sort_unstable();
        prop_assert_eq!(seen, expect);
    }

    /// A double remove returns `None` and leaves later inserts untouched.
    #[test]
    fn double_remove_is_inert(values in prop::collection::vec(any::<u64>(), 1..30)) {
        let mut arena: Arena<u64> = Arena::new();
        let handles: Vec<_> = values.iter().map(|&v| arena.insert(v)).collect();
        let victim = handles[values.len() / 2];
        prop_assert!(arena.remove(victim).is_some());
        prop_assert_eq!(arena.remove(victim), None);
        let fresh = arena.insert(u64::MAX);
        prop_assert_eq!(arena.get(victim), None, "recycled slot must not revive the old handle");
        prop_assert_eq!(arena.get(fresh), Some(&u64::MAX));
    }
}

/// Store-level stability: element/net handles taken right after the build
/// keep resolving to the same names and kinds after the coarsening and
/// hierarchy sections are recorded (the mutations a pipeline run performs
/// on a shared store).
#[test]
fn store_handles_stable_across_section_recording() {
    let netlist = "\
M1 out inp tail gnd! NMOS W=2u
M2 outb inn tail gnd! NMOS W=2u
M3 tail bias gnd! gnd! NMOS W=4u
R1 vdd! out 10k
R2 vdd! outb 10k
";
    let circuit = gana_netlist::parse(netlist).expect("parses");
    let mut store = CircuitStore::build(&circuit, GraphOptions::default());

    let elements: Vec<_> = (0..store.element_count())
        .map(|v| {
            (
                store.element_handle(v).expect("element handle"),
                store.device_name(v).expect("named").to_string(),
                store.element_kind(v).expect("kind"),
            )
        })
        .collect();
    let nets: Vec<_> = (store.element_count()..store.vertex_count())
        .map(|v| {
            (
                store.net_handle(v).expect("net handle"),
                store.net_name(v).expect("named").to_string(),
            )
        })
        .collect();

    // Compute CCC (fills the lazy section), then record coarsening and
    // hierarchy slabs — every mutation the pipeline applies post-build.
    let _ = store.ccc();
    store.record_coarsening(gana_store::CoarsenSection {
        levels: 1,
        n_original: store.vertex_count(),
        padded_size: store.vertex_count(),
        perm: (0..store.vertex_count() as u32).collect(),
        inverse_perm: (0..store.vertex_count() as u32).collect(),
        level_sizes: vec![store.vertex_count() as u32],
    });
    let mut slab = gana_store::HierarchySlab::new();
    let root = slab.add("sys", gana_store::HierKind::System, None, &[]);
    slab.set_root(root);
    store.record_hierarchy(slab);

    for (handle, name, kind) in &elements {
        let entry = &store.devices()[*handle];
        assert_eq!(store.resolve(entry.name), name.as_str());
        assert_eq!(entry.kind, *kind);
    }
    for (handle, name) in &nets {
        let entry = &store.nets()[*handle];
        assert_eq!(store.resolve(entry.name), name.as_str());
    }
}
