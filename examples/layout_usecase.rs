//! The paper's layout use case (Fig. 6): recognize the switched-capacitor
//! filter, then drive the constraint-aware symbolic placer with the
//! extracted hierarchy. Prints the ASCII layout map and writes an SVG.
//!
//! ```sh
//! cargo run --release --example layout_usecase
//! ```

use gana::core::{report, Task};
use gana::datasets::{ota, ota_classes, sc_filter};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};
use gana::layout::{place_design, render, symmetry, Pdk};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the OTA/bias model and recognize the SC filter (whose
    // telescopic OTA the training corpus has never shown the model).
    let corpus = ota::corpus(128, 1);
    let model_config = GcnConfig {
        conv_channels: vec![16, 32],
        filter_order: 16,
        fc_dim: 128,
        num_classes: 2,
        dropout: 0.1,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 12,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    };
    let trainer = eval::train_on_corpus(&corpus, model_config, trainer_config, 31)?;
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);

    let filter = sc_filter::generate(0);
    let design = pipeline.recognize(&filter.circuit)?;
    println!("{}", report::class_summary(&design));

    // Place: primitives become mirrored/interleaved rows, sub-blocks share
    // a symmetry axis, blocks assemble side by side.
    let layout = place_design(&design, &Pdk::default())?;
    layout.validate()?;
    println!(
        "die {}x{} grid units, {} cells, utilization {:.0}%",
        layout.die.w,
        layout.die.h,
        layout.placements.len(),
        100.0 * layout.utilization()
    );

    // Verify the detected constraints are honored by the placement.
    let checks = symmetry::verify(&layout, &design.constraints);
    println!(
        "constraints: {}/{} satisfied",
        checks.iter().filter(|c| c.satisfied).count(),
        checks.len()
    );
    for check in checks.iter().filter(|c| !c.satisfied) {
        println!("  violated: {} ({})", check.constraint, check.detail);
    }

    println!("\n{}", layout.to_ascii());
    let path = "target/sc_filter_layout.svg";
    std::fs::write(path, render::svg(&layout))?;
    println!("[svg written to {path}]");
    Ok(())
}
