//! The paper's largest testcase (Fig. 7): a phased-array system with LNA,
//! BPF, mixer, oscillator, BUF, and INV sub-blocks. The GCN only knows the
//! three RF classes; postprocessing separates the buffers and inverters
//! (Post-I) and relabels the BPF and residual confusions using antenna/LO
//! port knowledge (Post-II), reaching 100% device accuracy.
//!
//! ```sh
//! cargo run --release --example phased_array
//! ```

use gana::core::Task;
use gana::datasets::{phased_array, rf, rf_classes};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let corpus = rf::corpus(108, 2);
    let model_config = GcnConfig {
        conv_channels: vec![16, 32],
        filter_order: 16,
        fc_dim: 128,
        num_classes: 3,
        dropout: 0.1,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 12,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    };
    let trainer = eval::train_on_corpus(&corpus, model_config, trainer_config, 31)?;
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);

    let system = phased_array::generate(0);
    println!(
        "phased array: {} devices + {} nets = {} vertices (paper: 522 + 380 = 902)",
        system.circuit.device_count(),
        system.circuit.net_count(),
        system.node_count()
    );

    let design = pipeline.recognize(&system.circuit)?;
    println!("\nfinal per-class device counts (the Fig. 7 color map):");
    for (label, count) in eval::label_histogram(&design) {
        println!("  {label:<12} {count:>4}");
    }
    println!(
        "\nhierarchy: {} nodes, depth {}, {} sub-blocks, {} constraints",
        design.hierarchy.size(),
        design.hierarchy.depth(),
        design.sub_blocks.len(),
        design.constraints.len()
    );

    let ladder = eval::evaluate_device_ladder(&pipeline, std::slice::from_ref(&system))?;
    println!(
        "device accuracy ladder: GCN {:.2}% -> post-I {:.2}% -> post-II {:.2}% ({} devices)",
        100.0 * ladder.gcn,
        100.0 * ladder.post1,
        100.0 * ladder.post2,
        ladder.counted
    );
    Ok(())
}
