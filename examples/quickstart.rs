//! Quickstart: train a small GCN on generated OTA circuits, then annotate
//! an unseen netlist end to end.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use gana::core::{report, Task};
use gana::datasets::{ota, ota_classes};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a labeled training corpus (a scaled-down Table I row).
    let corpus = ota::corpus(96, 1);
    let stats = corpus.stats();
    println!(
        "corpus: {} circuits, {} nodes, {} classes, {} features",
        stats.circuits, stats.nodes, stats.labels, stats.features
    );

    // 2. Train the Fig. 4 GCN (smaller than the paper's for a fast demo).
    let model_config = GcnConfig {
        conv_channels: vec![16, 32],
        filter_order: 8,
        fc_dim: 64,
        num_classes: 2,
        dropout: 0.1,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 12,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    };
    let trainer = eval::train_on_corpus(&corpus, model_config, trainer_config, 7)?;
    let last = trainer
        .history()
        .last()
        .expect("trained at least one epoch");
    println!(
        "training: loss {:.3}, train acc {:.1}%, val acc {:.1}%",
        last.train_loss,
        100.0 * last.train_accuracy,
        100.0 * last.validation_accuracy
    );

    // 3. Annotate an unseen OTA variant end to end.
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let unseen = ota::generate(ota::OtaSpec {
        topology: ota::OtaTopology::Miller,
        pmos_input: true,
        bias: ota::BiasStyle::MirrorRef,
        seed: 9999,
    });
    let design = pipeline.recognize(&unseen.circuit)?;
    println!("\n{}", report::full_report(&design));

    let ladder = eval::evaluate_ladder(&pipeline, std::slice::from_ref(&unseen))?;
    println!(
        "accuracy ladder on the unseen circuit: GCN {:.1}% -> post-I {:.1}% -> post-II {:.1}%",
        100.0 * ladder.gcn,
        100.0 * ladder.post1,
        100.0 * ladder.post2
    );
    Ok(())
}
