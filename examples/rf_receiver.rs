//! RF receiver annotation: train the 3-class GCN (LNA / mixer /
//! oscillator), then annotate receivers the model has never seen and print
//! the accuracy ladder (paper Table II row 3: 83.64% → 89.24% → 100%).
//!
//! ```sh
//! cargo run --release --example rf_receiver
//! ```

use gana::core::{report, Task};
use gana::datasets::{rf, rf_classes};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train on generated receivers (LNA × mixer × oscillator variants).
    let corpus = rf::corpus(108, 2);
    let model_config = GcnConfig {
        conv_channels: vec![16, 32],
        filter_order: 16,
        fc_dim: 128,
        num_classes: 3,
        dropout: 0.1,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 12,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    };
    let trainer = eval::train_on_corpus(&corpus, model_config, trainer_config, 31)?;
    let last = trainer.history().last().expect("trained");
    println!(
        "RF model: train acc {:.1}%, val acc {:.1}%",
        100.0 * last.train_accuracy,
        100.0 * last.validation_accuracy
    );
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);

    // Annotate one unseen receiver in detail.
    let receiver = rf::generate(rf::ReceiverSpec {
        lna: rf::LnaKind::InductiveDegeneration,
        mixer: rf::MixerKind::Gilbert,
        osc: rf::OscKind::CrossCoupledLc,
        seed: 424_242,
    });
    let design = pipeline.recognize(&receiver.circuit)?;
    println!("\n{}", report::full_report(&design));

    // Score the whole held-out test set (Table II row 3).
    let test = rf::corpus(27, 555_001);
    let ladder = eval::evaluate_ladder(&pipeline, &test.samples)?;
    println!(
        "RF test set ({} receivers, {} vertices): GCN {:.2}% -> post-I {:.2}% -> post-II {:.2}%",
        test.samples.len(),
        ladder.counted,
        100.0 * ladder.gcn,
        100.0 * ladder.post1,
        100.0 * ladder.post2
    );
    Ok(())
}
