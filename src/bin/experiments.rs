//! Regenerates every table and figure of the GANA paper.
//!
//! ```sh
//! cargo run --release --bin experiments -- all          # everything
//! cargo run --release --bin experiments -- table1      # one experiment
//! GANA_FULL=1 cargo run --release --bin experiments -- all   # paper-sized corpora
//! ```
//!
//! Experiments: `table1`, `layers`, `fig5`, `table2`, `postprocessing`,
//! `fig6`, `fig7`, `runtime`, `ablation`, `hyper`, `confusion`. See
//! EXPERIMENTS.md for the paper-vs-measured record.

use gana::core::{report, Task};
use gana::datasets::{ota, ota_classes, phased_array, rf, rf_classes, sc_filter, Corpus};
use gana::eval;
use gana::gnn::{crossval, Activation, GcnConfig, Trainer, TrainerConfig};
use std::time::Instant;

/// Corpus / training sizes for one run profile.
#[derive(Clone, Copy)]
struct Profile {
    ota_train: usize,
    rf_train: usize,
    ota_test: usize,
    rf_test: usize,
    epochs: usize,
    sweep_train: usize,
    sweep_epochs: usize,
    folds: usize,
}

/// The paper-scale profile (Table I sizes). Slow: roughly the paper's
/// "under 2 hours for each dataset" territory on one core.
const FULL: Profile = Profile {
    ota_train: 624,
    rf_train: 608,
    ota_test: 168,
    rf_test: 105,
    epochs: 30,
    sweep_train: 160,
    sweep_epochs: 10,
    folds: 5,
};

/// The default profile: same experiments, smaller corpora, minutes not
/// hours. Set `GANA_FULL=1` for the paper-scale run.
const QUICK: Profile = Profile {
    ota_train: 128,
    rf_train: 108,
    ota_test: 48,
    rf_test: 27,
    epochs: 12,
    sweep_train: 64,
    sweep_epochs: 6,
    folds: 3,
};

fn profile() -> Profile {
    if std::env::var("GANA_FULL").is_ok_and(|v| v == "1") {
        FULL
    } else {
        QUICK
    }
}

fn model_config(classes: usize, filter_order: usize, layers: usize) -> GcnConfig {
    let widths = [16usize, 32, 64];
    GcnConfig {
        conv_channels: widths[..layers.clamp(1, 3)].to_vec(),
        filter_order,
        fc_dim: 128,
        num_classes: classes,
        dropout: 0.1,
        batch_norm: false,
        activation: Activation::Relu,
        ..GcnConfig::default()
    }
}

fn trainer_config(epochs: usize) -> TrainerConfig {
    TrainerConfig {
        epochs,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    }
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    let p = profile();
    let start = Instant::now();
    let run = |name: &str| which == "all" || which == name;
    if run("table1") {
        table1(p);
    }
    if run("layers") {
        layers(p);
    }
    if run("fig5") {
        fig5(p);
    }
    if run("table2") || run("postprocessing") {
        table2_and_postprocessing(p);
    }
    if run("fig6") {
        fig6(p);
    }
    if run("fig7") {
        fig7(p);
    }
    if run("runtime") {
        runtime(p);
    }
    if run("ablation") {
        ablation(p);
    }
    if run("hyper") {
        hyper(p);
    }
    if run("confusion") {
        confusion(p);
    }
    eprintln!(
        "\n[experiments done in {:.1}s]",
        start.elapsed().as_secs_f64()
    );
}

/// Table I: training-set description.
fn table1(p: Profile) {
    println!("== Table I: training dataset description ==");
    println!("(paper: OTA bias 624 ckts / 32152 nodes / 2 / 18; RF data 608 / 21886 / 3 / 18)");
    println!(
        "{:<12} {:>10} {:>8} {:>8} {:>10}",
        "Dataset", "# Circuits", "# Nodes", "# Labels", "# Features"
    );
    for corpus in [ota::corpus(p.ota_train, 1), rf::corpus(p.rf_train, 2)] {
        let s = corpus.stats();
        println!(
            "{:<12} {:>10} {:>8} {:>8} {:>10}",
            corpus.name, s.circuits, s.nodes, s.labels, s.features
        );
    }
    println!();
}

/// Section V-A layer study: 1 vs 2 vs 3 conv layers via k-fold CV. Run in
/// two conditions: the Table II feature set, and the structural condition
/// (net-type features off, small K) where depth must carry the class
/// information — the setting closest to the paper's hand-collected corpus.
fn layers(p: Profile) {
    println!("== Layer study (paper: 2 layers best; OTA 88.89%±1.71, RF 83.86%±1.98) ==");
    let conditions = [
        (
            "all features, K=8",
            8usize,
            gana::graph::features::FeatureOptions::default(),
        ),
        (
            "structural (net types off, K=3)",
            3usize,
            gana::graph::features::FeatureOptions {
                net_types: false,
                ..gana::graph::features::FeatureOptions::default()
            },
        ),
    ];
    for (condition, k, options) in conditions {
        println!("[{condition}]");
        for (name, corpus, classes) in [
            ("OTA bias", ota::corpus(p.sweep_train, 11), 2),
            ("RF data", rf::corpus(p.sweep_train, 12), 3),
        ] {
            for n_layers in 1..=3 {
                let config = model_config(classes, k, n_layers);
                let samples = eval::samples_from_corpus_with_features(
                    &corpus,
                    config.levels(),
                    classes,
                    5,
                    options,
                )
                .expect("samples");
                let result = crossval::k_fold(
                    &config,
                    &trainer_config(p.sweep_epochs),
                    &samples,
                    p.folds,
                    7,
                )
                .expect("cv runs");
                let (t_mean, t_var) = result.train_summary();
                let (v_mean, v_var) = result.validation_summary();
                println!(
                    "{name:<9} layers={n_layers}  train {:.2}%±{:.2}  validation {:.2}%±{:.2}",
                    100.0 * t_mean,
                    100.0 * t_var.sqrt(),
                    100.0 * v_mean,
                    100.0 * v_var.sqrt()
                );
            }
        }
    }
    println!();
}

/// Fig. 5: accuracy vs filter size K. Run twice: with all 18 features (the
/// Table II configuration) and with net-type features disabled — the
/// ablation that exposes the filter-radius dependence, because designer
/// net annotations otherwise make the task locally separable.
fn fig5(p: Profile) {
    println!("== Fig. 5: two-layer GCN accuracy vs filter size (paper: flattens ≈30) ==");
    let corpus = ota::corpus(p.sweep_train, 21);
    for (label, options) in [
        (
            "all 18 features",
            gana::graph::features::FeatureOptions::default(),
        ),
        (
            "net-type features off",
            gana::graph::features::FeatureOptions {
                net_types: false,
                ..gana::graph::features::FeatureOptions::default()
            },
        ),
    ] {
        println!("[{label}]");
        println!("{:>4} {:>12} {:>12}", "K", "train acc", "val acc");
        for k in [2usize, 4, 8, 16, 24, 32, 48] {
            let config = model_config(2, k, 2);
            let samples =
                eval::samples_from_corpus_with_features(&corpus, config.levels(), 2, 3, options)
                    .expect("samples");
            let result = crossval::k_fold(
                &config,
                &trainer_config(p.sweep_epochs),
                &samples,
                p.folds,
                17,
            )
            .expect("cv runs");
            let (t_mean, _) = result.train_summary();
            let (v_mean, _) = result.validation_summary();
            println!("{k:>4} {:>11.2}% {:>11.2}%", 100.0 * t_mean, 100.0 * v_mean);
        }
    }
    println!();
}

fn train_task(corpus: &Corpus, classes: usize, p: Profile) -> Trainer {
    eval::train_on_corpus(
        corpus,
        model_config(classes, 16, 2),
        trainer_config(p.epochs),
        31,
    )
    .expect("training runs")
}

/// Table II + the Section V-B accuracy ladder.
fn table2_and_postprocessing(p: Profile) {
    println!("== Table II + postprocessing ladder ==");
    println!("(paper: OTA 90.5%→100; SC filter 98.2%→100; RF 83.64%→89.24→100; phased array 79.8%→87.3→100)");

    // OTA task.
    let ota_train = ota::corpus(p.ota_train, 1);
    let trainer = train_task(&ota_train, 2, p);
    let last = trainer.history().last().expect("epochs ran");
    println!(
        "[OTA model] train acc {:.2}%, val acc {:.2}%",
        100.0 * last.train_accuracy,
        100.0 * last.validation_accuracy
    );
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let ota_test = ota::corpus(p.ota_test, 77_001);
    let ladder = eval::evaluate_ladder(&pipeline, &ota_test.samples).expect("eval");
    print_ladder("OTA bias test", p.ota_test, &ladder);

    let sc = sc_filter::generate(0);
    let ladder = eval::evaluate_ladder(&pipeline, std::slice::from_ref(&sc)).expect("eval");
    print_ladder("SC filter", 1, &ladder);

    // RF task.
    let rf_train = rf::corpus(p.rf_train, 2);
    let trainer = train_task(&rf_train, 3, p);
    let last = trainer.history().last().expect("epochs ran");
    println!(
        "[RF model] train acc {:.2}%, val acc {:.2}%",
        100.0 * last.train_accuracy,
        100.0 * last.validation_accuracy
    );
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    let rf_test = rf::corpus(p.rf_test, 88_001);
    let ladder = eval::evaluate_ladder(&pipeline, &rf_test.samples).expect("eval");
    print_ladder("RF test", p.rf_test, &ladder);

    let pa = phased_array::generate(0);
    let ladder = eval::evaluate_ladder(&pipeline, std::slice::from_ref(&pa)).expect("eval");
    print_ladder("Phased array", 1, &ladder);
    let device_ladder =
        eval::evaluate_device_ladder(&pipeline, std::slice::from_ref(&pa)).expect("eval");
    print_ladder("Phased array (devices)", 1, &device_ladder);
    println!();
}

fn print_ladder(name: &str, circuits: usize, ladder: &eval::AccuracyLadder) {
    println!(
        "{name:<24} ({circuits} ckts, {} vertices)  GCN {:.2}%  post-I {:.2}%  post-II {:.2}%",
        ladder.counted,
        100.0 * ladder.gcn,
        100.0 * ladder.post1,
        100.0 * ladder.post2
    );
}

/// Fig. 6: layout of the SC filter from the extracted hierarchy.
fn fig6(p: Profile) {
    println!("== Fig. 6: SC filter layout from the extracted hierarchy ==");
    let ota_train = ota::corpus(p.ota_train.min(128), 1);
    let trainer = train_task(&ota_train, 2, p);
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let sc = sc_filter::generate(0);
    let design = pipeline.recognize(&sc.circuit).expect("pipeline runs");
    println!("{}", report::class_summary(&design));
    let layout =
        gana::layout::place_design(&design, &gana::layout::Pdk::default()).expect("places");
    layout.validate().expect("legal layout");
    let checks = gana::layout::symmetry::verify(&layout, &design.constraints);
    println!(
        "constraints: {} checked, {:.0}% satisfied",
        checks.len(),
        100.0 * gana::layout::symmetry::satisfaction_rate(&checks)
    );
    println!(
        "die {}x{} units, utilization {:.0}%",
        layout.die.w,
        layout.die.h,
        100.0 * layout.utilization()
    );
    println!("{}", layout.to_ascii());
    let svg_path = "target/fig6_sc_filter.svg";
    if std::fs::write(svg_path, gana::layout::render::svg(&layout)).is_ok() {
        println!("[svg written to {svg_path}]");
    }
    println!();
}

/// Fig. 7: phased-array classification map.
fn fig7(p: Profile) {
    println!("== Fig. 7: phased-array classification after postprocessing ==");
    let rf_train = rf::corpus(p.rf_train.min(108), 2);
    let trainer = train_task(&rf_train, 3, p);
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    let pa = phased_array::generate(0);
    println!(
        "input: {} devices + {} nets = {} vertices (paper: 522 + 380 = 902)",
        pa.circuit.device_count(),
        pa.circuit.net_count(),
        pa.node_count()
    );
    let design = pipeline.recognize(&pa.circuit).expect("pipeline runs");
    println!("final per-class device counts:");
    for (label, count) in eval::label_histogram(&design) {
        println!("  {label:<12} {count:>4}");
    }
    let ladder = eval::evaluate_device_ladder(&pipeline, std::slice::from_ref(&pa)).expect("eval");
    print_ladder("phased array devices", 1, &ladder);
    println!();
}

/// Section V-B runtimes.
fn runtime(p: Profile) {
    println!("== Runtime (paper: SC filter 135s, phased array 514s, post <30s on i7-8core) ==");
    let ota_train = ota::corpus(p.ota_train.min(96), 1);
    let trainer = train_task(&ota_train, 2, p);
    let ota_pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let rf_train = rf::corpus(p.rf_train.min(81), 2);
    let trainer = train_task(&rf_train, 3, p);
    let rf_pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);

    let sc = sc_filter::generate(0);
    let t = Instant::now();
    let _ = ota_pipeline.recognize(&sc.circuit).expect("runs");
    println!("SC filter pipeline: {:.3}s", t.elapsed().as_secs_f64());

    let pa = phased_array::generate(0);
    let t = Instant::now();
    let design = rf_pipeline.recognize(&pa.circuit).expect("runs");
    println!("phased array pipeline: {:.3}s", t.elapsed().as_secs_f64());

    // Postprocessing alone.
    let t = Instant::now();
    let _ = rf_pipeline.finish(
        design.circuit.clone(),
        design.graph.clone(),
        design.gcn_class.clone(),
    );
    println!(
        "phased array postprocessing alone: {:.3}s",
        t.elapsed().as_secs_f64()
    );
    println!();
}

/// Ablations: ReLU vs tanh and batch norm (averaged over 3 seeds), plus
/// the three input-feature groups.
fn ablation(p: Profile) {
    println!("== Ablations (paper: 'ReLU provides consistently better results') ==");
    let corpus = ota::corpus(p.sweep_train, 41);
    for (name, activation, batch_norm) in [
        ("ReLU", Activation::Relu, false),
        ("tanh", Activation::Tanh, false),
        ("ReLU+batchnorm", Activation::Relu, true),
    ] {
        let mut train_accs = Vec::new();
        let mut val_accs = Vec::new();
        for seed in [5u64, 6, 7] {
            let config = GcnConfig {
                activation,
                batch_norm,
                seed,
                ..model_config(2, 8, 2)
            };
            let trainer =
                eval::train_on_corpus(&corpus, config, trainer_config(p.sweep_epochs), seed)
                    .expect("training runs");
            let last = trainer.history().last().expect("epochs ran");
            train_accs.push(last.train_accuracy);
            val_accs.push(last.validation_accuracy);
        }
        let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        println!(
            "{name:<16} train {:.2}%  val {:.2}%  (3 seeds)",
            100.0 * mean(&train_accs),
            100.0 * mean(&val_accs)
        );
    }

    println!(
        "
[input-feature groups]"
    );
    use gana::graph::features::FeatureOptions;
    for (name, options) in [
        ("all 18 features", FeatureOptions::default()),
        (
            "no element types",
            FeatureOptions {
                element_types: false,
                ..FeatureOptions::default()
            },
        ),
        (
            "no net types",
            FeatureOptions {
                net_types: false,
                ..FeatureOptions::default()
            },
        ),
        (
            "no edge descriptor",
            FeatureOptions {
                edge_descriptor: false,
                ..FeatureOptions::default()
            },
        ),
    ] {
        let config = model_config(2, 8, 2);
        let samples =
            eval::samples_from_corpus_with_features(&corpus, config.levels(), 2, 3, options)
                .expect("samples");
        let (train, validation) = gana::gnn::Trainer::split_80_20(&samples, 3);
        let mut trainer =
            gana::gnn::Trainer::new(config, trainer_config(p.sweep_epochs)).expect("valid");
        let history = trainer.fit(&train, &validation).expect("trains");
        let last = history.last().expect("epochs ran");
        println!(
            "{name:<20} train {:.2}%  val {:.2}%",
            100.0 * last.train_accuracy,
            100.0 * last.validation_accuracy
        );
    }
    println!();
}

/// §V-A: "a random search method is used to optimize hyperparameters such
/// as the learning rate, regularization, decay rate, and filter size."
fn hyper(p: Profile) {
    use gana::gnn::hyper::{random_search, SearchSpace};
    println!("== Random hyperparameter search (paper §V-A) ==");
    let corpus = ota::corpus(p.sweep_train, 61);
    let base_model = model_config(2, 8, 2);
    let samples = eval::samples_from_corpus(&corpus, base_model.levels(), 2, 9).expect("samples");
    let (train, validation) = Trainer::split_80_20(&samples, 9);
    let base_trainer = trainer_config(p.sweep_epochs);
    let space = SearchSpace::default();
    let trials = if p.folds >= 5 { 12 } else { 6 };
    let candidates = random_search(
        &base_model,
        &base_trainer,
        &space,
        &train,
        &validation,
        trials,
        42,
    )
    .expect("search runs");
    println!(
        "{:>4} {:>6} {:>9} {:>10} {:>8} {:>10}",
        "rank", "K", "dropout", "lr", "decay", "val acc"
    );
    for (rank, c) in candidates.iter().enumerate().take(6) {
        println!(
            "{:>4} {:>6} {:>9.2} {:>10.2e} {:>8.3} {:>9.2}%",
            rank + 1,
            c.model.filter_order,
            c.model.dropout,
            c.trainer.learning_rate,
            c.trainer.lr_decay,
            100.0 * c.validation_accuracy
        );
    }
    println!();
}

/// Per-class precision/recall of the RF model on the held-out receivers
/// (detail behind the Table II row-3 number).
fn confusion(p: Profile) {
    use gana::gnn::metrics::ConfusionMatrix;
    println!("== RF confusion matrix (GCN alone, vertex level) ==");
    let rf_train = rf::corpus(p.rf_train, 2);
    let trainer = train_task(&rf_train, 3, p);
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    let test = rf::corpus(p.rf_test, 88_001);
    let mut cm = ConfusionMatrix::new(3);
    for lc in &test.samples {
        let design = pipeline.recognize(&lc.circuit).expect("pipeline runs");
        let mut preds = Vec::new();
        let mut labels = Vec::new();
        for v in 0..design.graph.vertex_count() {
            let truth = if let Some(d) = design.graph.device_name(v) {
                lc.device_class.get(d).copied()
            } else {
                design
                    .graph
                    .net_name(v)
                    .and_then(|n| lc.net_class.get(n).copied())
            };
            preds.push(design.gcn_class[v]);
            labels.push(truth.filter(|&c| c < 3));
        }
        cm.record(&preds, &labels);
    }
    println!(
        "{:<12} {:>8} {:>8} {:>8}   {:>9} {:>9}",
        "truth\\pred", "lna", "mixer", "osc", "precision", "recall"
    );
    for t in 0..3 {
        let precision = cm
            .precision(t)
            .map_or("-".to_string(), |v| format!("{:.1}%", 100.0 * v));
        let recall = cm
            .recall(t)
            .map_or("-".to_string(), |v| format!("{:.1}%", 100.0 * v));
        println!(
            "{:<12} {:>8} {:>8} {:>8}   {:>9} {:>9}",
            rf_classes::NAMES[t],
            cm.get(t, 0),
            cm.get(t, 1),
            cm.get(t, 2),
            precision,
            recall
        );
    }
    println!("overall GCN accuracy: {:.2}%", 100.0 * cm.accuracy());
    println!();
}
