//! `gana` — command-line front end for netlist annotation.
//!
//! ```sh
//! # Train a model on generated circuits and save a checkpoint.
//! gana train --task ota --circuits 128 --epochs 12 --out ota.ckpt
//!
//! # Annotate a SPICE netlist with a trained model.
//! gana annotate my_design.sp --model ota.ckpt --task ota --export annotated.sp
//!
//! # Structural inspection without a model (parse, flatten, preprocess,
//! # primitives).
//! gana inspect my_design.sp
//!
//! # Emit one of the benchmark circuits as SPICE.
//! gana generate --kind sc-filter --out sc_filter.sp
//!
//! # Run the annotation daemon and submit a netlist to it.
//! gana serve --model ota.ckpt --task ota --addr 127.0.0.1:7878 --workers 8
//! gana submit my_design.sp --task ota --addr 127.0.0.1:7878
//!
//! # Persist a binary engine snapshot and warm-start the daemon from it.
//! gana train --task ota --out ota.ckpt --save-model ota.gsnap
//! gana serve --model ota.ckpt --task ota --snapshot-dir /var/lib/gana
//! gana snapshot inspect /var/lib/gana/engine.gsnap
//! ```

use gana::core::{export, report, Pipeline, Task};
use gana::datasets::{ota, ota_classes, phased_array, rf, rf_classes, sc_filter};
use gana::eval;
use gana::gnn::{checkpoint, GcnConfig, TrainerConfig};
use gana::netlist::SpiceLibrary;
use gana::persist::{EngineSnapshot, ModelEntry};
use gana::primitives::PrimitiveLibrary;
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("annotate") => cmd_annotate(&args[1..]),
        Some("inspect") => cmd_inspect(&args[1..]),
        Some("generate") => cmd_generate(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("shard") => cmd_shard(&args[1..]),
        Some("submit") => cmd_submit(&args[1..]),
        Some("loadgen") => cmd_loadgen(&args[1..]),
        Some("snapshot") => cmd_snapshot(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command {other:?}; try `gana help`")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "gana — GCN-based netlist annotation (GANA, DATE 2020 reproduction)\n\n\
         USAGE:\n  gana train    --task ota|rf [--circuits N] [--epochs N] [--filter-order K] [--seed N] --out FILE [--save-model SNAP]\n  \
         gana annotate FILE --model FILE --task ota|rf [--baseline FILE] [--export FILE] [--svg FILE] [--dot FILE]\n  \
         gana inspect  FILE\n  \
         gana generate --kind ota|rf|sc-filter|phased-array [--seed N] [--out FILE]\n  \
         gana serve    --model FILE --task ota|rf [--addr HOST:PORT] [--workers N] [--queue N] [--stats-secs N] [--max-batch N] [--batch-window-us N|auto] [--quantized] [--basis-cache-mb N] [--snapshot-dir DIR] [--snapshot-secs N] [--pid-file FILE]\n  \
         gana shard    --snapshot-root DIR [--shards N] [--addr HOST:PORT] [--seed-snapshot SNAP | --model FILE --task ota|rf] [--workers N] [--queue N] [--max-batch N] [--batch-window-us N|auto]\n  \
         gana submit   FILE --task ota|rf [--addr HOST:PORT] [--deadline-ms N] [--export FILE] [--binary]\n  \
         gana loadgen  --addr HOST:PORT [--rate RPS] [--duration-s N] [--connections N] [--deadline-ms N|none] [--seed N] [--skew S] [--session-frac F] [--batch-frac F] [--batch-size N] [--families a,b,..] [--cached] [--text]\n  \
         gana submit   stats|shutdown [--addr HOST:PORT] [--binary] [--per-shard]\n  \
         gana snapshot save --model FILE --task ota|rf --out SNAP\n  \
         gana snapshot inspect SNAP"
    );
}

/// Removes a bare `--name` switch (no value) from the argument list,
/// reporting whether it was present. Run before [`parse_flags`], which only
/// understands `--key value` pairs.
fn extract_bool_flag(args: &[String], name: &str) -> (Vec<String>, bool) {
    let flag = format!("--{name}");
    let mut present = false;
    let rest = args
        .iter()
        .filter(|a| {
            if **a == flag {
                present = true;
                false
            } else {
                true
            }
        })
        .cloned()
        .collect();
    (rest, present)
}

/// Splits `--key value` pairs from positional arguments.
fn parse_flags(args: &[String]) -> Result<(Vec<&str>, HashMap<&str, &str>), String> {
    let mut positional = Vec::new();
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        if let Some(key) = args[i].strip_prefix("--") {
            let value = args
                .get(i + 1)
                .ok_or_else(|| format!("flag --{key} needs a value"))?;
            flags.insert(key, value.as_str());
            i += 2;
        } else {
            positional.push(args[i].as_str());
            i += 1;
        }
    }
    Ok((positional, flags))
}

fn parse_task(flags: &HashMap<&str, &str>) -> Result<Task, String> {
    match flags.get("task").copied() {
        Some("ota") => Ok(Task::OtaBias),
        Some("rf") => Ok(Task::Rf),
        Some(other) => Err(format!("unknown task {other:?} (expected ota or rf)")),
        None => Err("missing --task ota|rf".to_string()),
    }
}

fn numeric<T: std::str::FromStr>(
    flags: &HashMap<&str, &str>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        Some(v) => v.parse().map_err(|_| format!("bad --{key} value {v:?}")),
        None => Ok(default),
    }
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let task = parse_task(&flags)?;
    let circuits: usize = numeric(&flags, "circuits", 128)?;
    let epochs: usize = numeric(&flags, "epochs", 12)?;
    let filter_order: usize = numeric(&flags, "filter-order", 16)?;
    let seed: u64 = numeric(&flags, "seed", 1)?;
    let out = flags.get("out").ok_or("missing --out FILE")?;

    let (corpus, classes) = match task {
        Task::OtaBias => (ota::corpus(circuits, seed), 2),
        Task::Rf => (rf::corpus(circuits, seed), 3),
    };
    let stats = corpus.stats();
    println!(
        "training on {} circuits ({} nodes, {} classes)",
        stats.circuits, stats.nodes, stats.labels
    );
    let model_config = GcnConfig {
        conv_channels: vec![16, 32],
        filter_order,
        fc_dim: 128,
        num_classes: classes,
        dropout: 0.1,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs,
        learning_rate: 4e-3,
        ..TrainerConfig::default()
    };
    let trainer = eval::train_on_corpus(&corpus, model_config, trainer_config, seed)
        .map_err(|e| e.to_string())?;
    let last = trainer.history().last().ok_or("no epochs ran")?;
    println!(
        "trained: loss {:.4}, train acc {:.2}%, val acc {:.2}%",
        last.train_loss,
        100.0 * last.train_accuracy,
        100.0 * last.validation_accuracy
    );
    checkpoint::save(trainer.model(), out).map_err(|e| e.to_string())?;
    println!("checkpoint written to {out}");
    if let Some(snap) = flags.get("save-model") {
        let bytes = model_snapshot(trainer.model().clone(), task)?
            .save(std::path::Path::new(snap))
            .map_err(|e| e.to_string())?;
        println!("engine snapshot written to {snap} ({bytes} B)");
    }
    Ok(())
}

fn task_class_names(task: Task) -> Vec<String> {
    match task {
        Task::OtaBias => ota_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        Task::Rf => rf_classes::NAMES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Wraps a trained model (plus the standard primitive library and an empty
/// region cache) into a loadable engine snapshot.
fn model_snapshot(model: gana::gnn::GcnModel, task: Task) -> Result<EngineSnapshot, String> {
    Ok(EngineSnapshot {
        models: vec![ModelEntry {
            task,
            class_names: task_class_names(task),
            model,
        }],
        library: PrimitiveLibrary::standard().map_err(|e| e.to_string())?,
        cache_entries: Vec::new(),
    })
}

fn load_pipeline(model_path: &str, task: Task) -> Result<Pipeline, String> {
    let model = checkpoint::load(model_path).map_err(|e| e.to_string())?;
    Ok(Pipeline::new(
        model,
        task_class_names(task),
        PrimitiveLibrary::standard().map_err(|e| e.to_string())?,
        task,
    ))
}

fn read_flat_circuit(path: &str) -> Result<gana::netlist::Circuit, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let lib = gana::netlist::parse_library(&text).map_err(|e| e.to_string())?;
    gana::netlist::flatten(&lib).map_err(|e| e.to_string())
}

fn cmd_annotate(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    let path = positional.first().ok_or("missing input netlist FILE")?;
    let task = parse_task(&flags)?;
    let model_path = flags.get("model").ok_or("missing --model FILE")?;
    let pipeline = load_pipeline(model_path, task)?;
    let flat = read_flat_circuit(path)?;
    let design = match flags.get("baseline") {
        Some(prev) => {
            // Incremental path: cold-annotate the previous revision, then
            // diff-update to the edited netlist.
            let incremental = gana::incremental::IncrementalPipeline::new(pipeline);
            let prev_flat = read_flat_circuit(prev)?;
            let baseline = incremental
                .annotate_full(&prev_flat)
                .map_err(|e| e.to_string())?;
            let (next, stats) = incremental
                .update(&baseline, &flat)
                .map_err(|e| e.to_string())?;
            println!("incremental vs {prev}: {stats}");
            next.design
        }
        None => pipeline.recognize(&flat).map_err(|e| e.to_string())?,
    };
    println!("{}", report::full_report(&design));
    if let Some(out) = flags.get("export") {
        std::fs::write(out, export::to_hierarchical_spice(&design))
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("hierarchical SPICE written to {out}");
    }
    if let Some(dot) = flags.get("dot") {
        std::fs::write(dot, report::to_dot(&design))
            .map_err(|e| format!("cannot write {dot}: {e}"))?;
        println!("hierarchy dot graph written to {dot}");
    }
    if let Some(svg) = flags.get("svg") {
        let layout = gana::layout::place_design(&design, &gana::layout::Pdk::default())
            .map_err(|e| e.to_string())?;
        std::fs::write(svg, gana::layout::render::svg(&layout))
            .map_err(|e| format!("cannot write {svg}: {e}"))?;
        println!("layout SVG written to {svg}");
    }
    Ok(())
}

fn cmd_inspect(args: &[String]) -> Result<(), String> {
    let (positional, _) = parse_flags(args)?;
    let path = positional.first().ok_or("missing input netlist FILE")?;
    let flat = read_flat_circuit(path)?;
    let (clean, prep) =
        gana::netlist::preprocess(&flat, gana::netlist::PreprocessOptions::default())
            .map_err(|e| e.to_string())?;
    println!(
        "{}: {} devices, {} nets (after preprocessing: {} devices, {} folded)",
        clean.name(),
        flat.device_count(),
        flat.net_count(),
        clean.device_count(),
        prep.eliminated()
    );
    let graph = gana::graph::CircuitGraph::build(&clean, gana::graph::GraphOptions::default());
    println!(
        "graph: {} vertices ({} elements + {} nets), {} edges",
        graph.vertex_count(),
        graph.element_count(),
        graph.net_count(),
        graph.edge_count()
    );
    let library = PrimitiveLibrary::standard().map_err(|e| e.to_string())?;
    let annotation = gana::primitives::annotate(&library, &clean, &graph);
    println!(
        "primitives: {} instances, {:.0}% device coverage",
        annotation.instances.len(),
        100.0 * annotation.coverage()
    );
    for inst in &annotation.instances {
        println!("  {:<10} [{}]", inst.primitive, inst.devices.join(", "));
    }
    if !annotation.unclaimed.is_empty() {
        println!("  unclaimed: [{}]", annotation.unclaimed.join(", "));
    }
    Ok(())
}

/// The snapshot file a `--snapshot-dir` daemon reads at boot and writes
/// periodically and at drain time.
const SNAPSHOT_FILE: &str = "engine.gsnap";

fn cmd_serve(args: &[String]) -> Result<(), String> {
    use gana::serve::{server, Engine};

    let (args, quantized) = extract_bool_flag(args, "quantized");
    let (_, flags) = parse_flags(&args)?;
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7878");
    let workers: usize = numeric(
        &flags,
        "workers",
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4),
    )?;
    let queue: usize = numeric(&flags, "queue", 256)?;
    let stats_secs: u64 = numeric(&flags, "stats-secs", 30)?;
    let snapshot_secs: u64 = numeric(&flags, "snapshot-secs", 300)?;
    let max_batch: usize = numeric(&flags, "max-batch", 1)?;
    // Chebyshev basis-cache budget in MiB; 0 disables the cache.
    let basis_cache_mb: usize = numeric(
        &flags,
        "basis-cache-mb",
        gana::serve::DEFAULT_BASIS_CACHE_BYTES >> 20,
    )?;

    let mut builder = Engine::builder()
        .workers(workers)
        .queue_capacity(queue)
        .max_batch(max_batch)
        .quantized(quantized)
        .basis_cache_bytes(basis_cache_mb << 20);
    if quantized {
        println!("serving from int8-quantized GCN weights (per-channel affine)");
    }
    // `auto` sizes the gather window from the live arrival-gap and
    // service-time EMAs instead of a fixed number.
    builder = match flags.get("batch-window-us").copied() {
        Some("auto") => builder.batch_window_auto(),
        _ => builder.batch_window_us(numeric(&flags, "batch-window-us", 0)?),
    };

    // Warm start: an existing snapshot replaces the train-and-build cold
    // path entirely — the model, library, and region cache all come from
    // the file. A corrupt or version-skewed snapshot is rejected (never
    // silently half-loaded); the daemon then falls back to --model if
    // given.
    let snapshot_path = flags
        .get("snapshot-dir")
        .map(|dir| std::path::Path::new(dir).join(SNAPSHOT_FILE));
    let mut warm = false;
    if let Some(path) = &snapshot_path {
        if path.exists() {
            match EngineSnapshot::load(path) {
                Ok(snapshot) => {
                    println!("warm start from {}", path.display());
                    builder = builder.warm_from(snapshot);
                    warm = true;
                }
                Err(err) => eprintln!(
                    "warning: cannot warm-start from {}: {err}; starting cold",
                    path.display()
                ),
            }
        }
        builder = builder.snapshot_path(path.clone());
    }
    if !warm {
        // --task is only needed on the cold path; a warm start carries the
        // task inside the snapshot.
        let task = parse_task(&flags)?;
        let model_path = flags
            .get("model")
            .ok_or("missing --model FILE (no usable snapshot to warm-start from)")?;
        builder = builder.pipeline(load_pipeline(model_path, task)?);
    }

    // The pid file lives exactly as long as this daemon: written before we
    // listen, removed when the guard drops after the drain.
    let _pid = flags
        .get("pid-file")
        .map(gana::shard::daemon::PidFile::write)
        .transpose()
        .map_err(|e| format!("cannot write pid file: {e}"))?;

    let engine = std::sync::Arc::new(builder.build());
    let config = server::ServerConfig {
        addr: addr.to_string(),
        stats_interval: (stats_secs > 0).then(|| std::time::Duration::from_secs(stats_secs)),
        snapshot_interval: (snapshot_secs > 0 && snapshot_path.is_some())
            .then(|| std::time::Duration::from_secs(snapshot_secs)),
    };
    let handle = server::serve(engine, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "gana-serve listening on {} ({} workers, queue {}); send `shutdown` to stop",
        handle.local_addr(),
        workers,
        queue
    );
    // SIGTERM/SIGINT drain the daemon exactly like a `shutdown` request
    // (stop admission, finish in-flight jobs, write the drain snapshot).
    gana::shard::daemon::run_until_shutdown(&handle);
    println!("gana-serve drained and stopped");
    Ok(())
}

fn cmd_shard(args: &[String]) -> Result<(), String> {
    use gana::shard::{serve_router, Cluster, ClusterConfig, RouterConfig, ShardCommand};

    let (_, flags) = parse_flags(args)?;
    let shards: usize = numeric(&flags, "shards", 2)?;
    let snapshot_root = flags
        .get("snapshot-root")
        .ok_or("missing --snapshot-root DIR")?;
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7979");
    std::fs::create_dir_all(snapshot_root)
        .map_err(|e| format!("cannot create {snapshot_root}: {e}"))?;

    // Seed snapshot for cold shard directories: either given directly, or
    // built from a checkpoint the same way `gana snapshot save` does.
    let seed_snapshot = match (flags.get("seed-snapshot"), flags.get("model")) {
        (Some(snap), _) => Some(std::path::PathBuf::from(snap)),
        (None, Some(model_path)) => {
            let task = parse_task(&flags)?;
            let model = checkpoint::load(model_path).map_err(|e| e.to_string())?;
            let path = std::path::Path::new(snapshot_root).join("seed.gsnap");
            model_snapshot(model, task)?
                .save(&path)
                .map_err(|e| e.to_string())?;
            println!("seed snapshot written to {}", path.display());
            Some(path)
        }
        (None, None) => None, // shard dirs must already hold snapshots
    };

    // Each shard is a full `gana serve` daemon run from this same binary;
    // the supervisor appends --addr and --snapshot-dir per shard.
    let program = std::env::current_exe().map_err(|e| format!("cannot find own binary: {e}"))?;
    let mut worker_args = vec!["serve".to_string()];
    for key in [
        "workers",
        "queue",
        "stats-secs",
        "snapshot-secs",
        "max-batch",
        "batch-window-us",
    ] {
        if let Some(value) = flags.get(key) {
            worker_args.push(format!("--{key}"));
            worker_args.push(value.to_string());
        }
    }
    if !flags.contains_key("workers") {
        // Shards multiply processes; default each to one worker thread.
        worker_args.push("--workers".to_string());
        worker_args.push("1".to_string());
    }

    let mut config = ClusterConfig::new(
        shards,
        snapshot_root,
        ShardCommand {
            program,
            args: worker_args,
        },
    );
    config.seed_snapshot = seed_snapshot;
    let cluster = Cluster::launch(config).map_err(|e| format!("cannot launch fleet: {e}"))?;
    let router = serve_router(
        cluster.topology(),
        RouterConfig {
            addr: addr.to_string(),
            ..RouterConfig::default()
        },
    )
    .map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!(
        "gana-shard router on {} over {} shards (snapshots under {}); send `shutdown` to stop",
        router.local_addr(),
        shards,
        snapshot_root
    );

    gana::shard::sys::install_term_handler();
    while !gana::shard::sys::term_requested() && !router.is_stopped() {
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("draining fleet (each shard writes its snapshot)");
    cluster.shutdown();
    router.shutdown();
    println!("gana-shard drained and stopped");
    Ok(())
}

fn cmd_snapshot(args: &[String]) -> Result<(), String> {
    let (positional, flags) = parse_flags(args)?;
    match positional.first().copied() {
        Some("save") => {
            let task = parse_task(&flags)?;
            let model_path = flags.get("model").ok_or("missing --model FILE")?;
            let out = flags.get("out").ok_or("missing --out SNAP")?;
            let model = checkpoint::load(model_path).map_err(|e| e.to_string())?;
            let bytes = model_snapshot(model, task)?
                .save(std::path::Path::new(out))
                .map_err(|e| e.to_string())?;
            println!("engine snapshot written to {out} ({bytes} B)");
            Ok(())
        }
        Some("inspect") => {
            let path = positional
                .get(1)
                .ok_or("missing snapshot FILE (usage: gana snapshot inspect SNAP)")?;
            let info =
                gana::persist::inspect(std::path::Path::new(path)).map_err(|e| e.to_string())?;
            println!("{info}");
            Ok(())
        }
        Some(other) => Err(format!(
            "unknown snapshot subcommand {other:?} (want save|inspect)"
        )),
        None => Err("missing snapshot subcommand (want save|inspect)".to_string()),
    }
}

fn cmd_submit(args: &[String]) -> Result<(), String> {
    use gana::serve::client::{Client, RetryPolicy};

    let (args, binary) = extract_bool_flag(args, "binary");
    let (args, per_shard) = extract_bool_flag(&args, "per-shard");
    let (positional, flags) = parse_flags(&args)?;
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7878");
    // Retry refused connections: the daemon (or a shard fleet) may still
    // be booting or mid-restart.
    let policy = RetryPolicy::default();
    let mut client = if binary {
        Client::connect_binary_retrying(addr, policy).map_err(|e| e.to_string())?
    } else {
        Client::connect_retrying(addr, policy).map_err(|e| e.to_string())?
    };

    if positional.contains(&"stats") {
        if per_shard {
            let (shards, fleet) = client.fleet_stats().map_err(|e| e.to_string())?;
            for (id, stats) in shards {
                println!("shard {id}: {stats}");
            }
            println!("fleet: {fleet}");
        } else {
            let stats = client.stats().map_err(|e| e.to_string())?;
            println!("{stats}");
        }
        return Ok(());
    }
    if positional.contains(&"shutdown") {
        client.shutdown().map_err(|e| e.to_string())?;
        println!("daemon acknowledged shutdown");
        return Ok(());
    }

    let path = positional.first().ok_or("missing input netlist FILE")?;
    let task = parse_task(&flags)?;
    let deadline = flags
        .get("deadline-ms")
        .map(|ms| {
            ms.parse::<u64>()
                .map_err(|_| format!("bad --deadline-ms value {ms:?}"))
        })
        .transpose()?
        .map(std::time::Duration::from_millis);
    let netlist = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let annotation = client
        .annotate(&netlist, task, deadline)
        .map_err(|e| e.to_string())?;
    println!("circuit: {}", annotation.circuit_name);
    println!("sub-blocks: [{}]", annotation.sub_blocks.join(", "));
    println!("constraints: {}", annotation.constraint_count);
    for (device, label) in &annotation.device_labels {
        println!("  {device:<10} {label}");
    }
    if let Some(out) = flags.get("export") {
        std::fs::write(out, &annotation.hierarchical_spice)
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("hierarchical SPICE written to {out}");
    }
    Ok(())
}

fn cmd_loadgen(args: &[String]) -> Result<(), String> {
    use gana::loadgen::{run, Family, LoadConfig};

    let (args, text) = extract_bool_flag(args, "text");
    // --cached lets the result cache absorb repeats; default traffic is
    // nonce-busted so the server does real recognition per op.
    let (args, cached) = extract_bool_flag(&args, "cached");
    let (_, flags) = parse_flags(&args)?;
    let addr = flags.get("addr").copied().unwrap_or("127.0.0.1:7878");

    let mut config = LoadConfig::new(addr);
    config.binary = !text;
    config.cache_bust = !cached;
    config.rate_rps = numeric(&flags, "rate", config.rate_rps)?;
    config.duration = std::time::Duration::from_secs(numeric(&flags, "duration-s", 2u64)?);
    config.connections = numeric(&flags, "connections", config.connections)?;
    config.seed = numeric(&flags, "seed", config.seed)?;
    config.skew = numeric(&flags, "skew", config.skew)?;
    config.session_frac = numeric(&flags, "session-frac", config.session_frac)?;
    config.batch_frac = numeric(&flags, "batch-frac", config.batch_frac)?;
    config.batch_size = numeric(&flags, "batch-size", config.batch_size)?;
    config.deadline = match flags.get("deadline-ms").copied() {
        Some("none") => None,
        Some(ms) => Some(std::time::Duration::from_millis(
            ms.parse()
                .map_err(|_| format!("bad --deadline-ms value {ms:?}"))?,
        )),
        None => config.deadline,
    };
    if let Some(list) = flags.get("families") {
        config.families = list
            .split(',')
            .map(|name| {
                Family::parse(name.trim()).ok_or_else(|| {
                    format!("unknown family {name:?} (ota|rf|sc-filter|phased-array)")
                })
            })
            .collect::<Result<_, _>>()?;
        if config.families.is_empty() {
            return Err("--families needs at least one family".to_string());
        }
    }

    println!(
        "loadgen: {:.1} rps open-loop for {:?} over {} connections ({} mix: {:.0}% sessions, {:.0}% batches of {})",
        config.rate_rps,
        config.duration,
        config.connections,
        config
            .families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join("+"),
        config.session_frac * 100.0,
        config.batch_frac * 100.0,
        config.batch_size,
    );
    let summary = run(&config).map_err(|e| e.to_string())?;
    println!(
        "sent {} ops in {:.2}s: {} completed, {} overloaded, {} busy, {} deadline-expired, {} other, {} io",
        summary.sent,
        summary.elapsed.as_secs_f64(),
        summary.completed,
        summary.overloaded,
        summary.busy,
        summary.deadline_expired,
        summary.other_errors,
        summary.io_errors,
    );
    println!(
        "latency (all outcomes): p50 {}us p99 {}us p999 {}us mean {}us",
        summary.all.quantile_us(0.5),
        summary.all.quantile_us(0.99),
        summary.all.quantile_us(0.999),
        summary.all.mean_us(),
    );
    println!(
        "latency (accepted):     p50 {}us p99 {}us p999 {}us ({} samples)",
        summary.accepted.quantile_us(0.5),
        summary.accepted.quantile_us(0.99),
        summary.accepted.quantile_us(0.999),
        summary.accepted.samples(),
    );
    // Machine-readable line last; ci.sh greps for the `loadgen-result` tag.
    println!("loadgen-result {}", summary.machine_line());
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let (_, flags) = parse_flags(args)?;
    let seed: u64 = numeric(&flags, "seed", 0)?;
    let kind = flags.get("kind").copied().ok_or("missing --kind")?;
    let circuit = match kind {
        "ota" => {
            ota::generate(ota::OtaSpec {
                topology: ota::OtaTopology::ALL[(seed as usize) % 6],
                pmos_input: seed % 2 == 1,
                bias: ota::BiasStyle::ALL[(seed as usize / 2) % 4],
                seed,
            })
            .circuit
        }
        "rf" => {
            rf::generate(rf::ReceiverSpec {
                lna: rf::LnaKind::ALL[(seed as usize) % 3],
                mixer: rf::MixerKind::ALL[(seed as usize / 3) % 3],
                osc: rf::OscKind::ALL[(seed as usize / 9) % 3],
                seed,
            })
            .circuit
        }
        "sc-filter" => sc_filter::generate(seed).circuit,
        "phased-array" => phased_array::generate(seed).circuit,
        other => return Err(format!("unknown --kind {other:?}")),
    };
    let text = gana::netlist::write_spice(&SpiceLibrary::new(circuit));
    match flags.get("out") {
        Some(out) => {
            std::fs::write(out, text).map_err(|e| format!("cannot write {out}: {e}"))?;
            println!("netlist written to {out}");
        }
        None => print!("{text}"),
    }
    Ok(())
}
