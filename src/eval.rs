//! Training and evaluation helpers shared by the experiments binary, the
//! examples, and the integration tests.
//!
//! The accuracy accounting mirrors the paper: a vertex (device or net) is
//! correct when the stage's label equals the ground-truth class name, so
//! classes outside the GCN's space (BPF/BUF/INV in the phased array) count
//! as errors until postprocessing separates them.

use gana_core::{Pipeline, Task};
use gana_datasets::{Corpus, LabeledCircuit};
use gana_gnn::{GcnConfig, GraphSample, Trainer, TrainerConfig};
use std::collections::BTreeMap;

/// Converts a labeled corpus into GNN training samples.
///
/// Labels are restricted to the corpus class space; vertices whose class id
/// exceeds `num_classes` (e.g. BPF in a 3-class RF model) become unlabeled.
///
/// # Errors
///
/// Propagates coarsening failures.
pub fn samples_from_corpus(
    corpus: &Corpus,
    levels: usize,
    num_classes: usize,
    seed: u64,
) -> Result<Vec<GraphSample>, gana_gnn::GnnError> {
    samples_from_corpus_with_features(
        corpus,
        levels,
        num_classes,
        seed,
        gana_graph::features::FeatureOptions::default(),
    )
}

/// [`samples_from_corpus`] with feature-group toggles, for the input-feature
/// ablation (e.g. Fig. 5 without designer net-type annotations, which forces
/// the Chebyshev filter radius to carry the structural information).
///
/// # Errors
///
/// Propagates coarsening failures.
pub fn samples_from_corpus_with_features(
    corpus: &Corpus,
    levels: usize,
    num_classes: usize,
    seed: u64,
    options: gana_graph::features::FeatureOptions,
) -> Result<Vec<GraphSample>, gana_gnn::GnnError> {
    corpus
        .samples
        .iter()
        .enumerate()
        .map(|(i, lc)| {
            let graph = lc.graph();
            let labels: Vec<Option<usize>> = lc
                .vertex_labels(&graph)
                .into_iter()
                .map(|l| l.filter(|&c| c < num_classes))
                .collect();
            GraphSample::prepare_with_features(
                lc.name.clone(),
                &lc.circuit,
                &graph,
                labels,
                levels,
                seed.wrapping_add(i as u64),
                options,
            )
        })
        .collect()
}

/// Trains a GCN on a corpus with an 80/20 split; returns the trainer (with
/// model and history).
///
/// # Errors
///
/// Propagates training failures.
pub fn train_on_corpus(
    corpus: &Corpus,
    model_config: GcnConfig,
    trainer_config: TrainerConfig,
    seed: u64,
) -> Result<Trainer, gana_gnn::GnnError> {
    let samples = samples_from_corpus(
        corpus,
        model_config.levels(),
        model_config.num_classes,
        seed,
    )?;
    let (train, validation) = Trainer::split_80_20(&samples, seed);
    let mut trainer = Trainer::new(model_config, trainer_config)?;
    trainer.fit(&train, &validation)?;
    Ok(trainer)
}

/// Accuracy of the three pipeline stages over one or more circuits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccuracyLadder {
    /// Raw GCN vertex accuracy.
    pub gcn: f64,
    /// After Postprocessing I (CCC smoothing + stand-alone separation).
    pub post1: f64,
    /// After Postprocessing II (port-knowledge rules) — final labels.
    pub post2: f64,
    /// Vertices counted.
    pub counted: usize,
}

/// Runs the pipeline on labeled circuits and scores every stage.
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_ladder(
    pipeline: &Pipeline,
    circuits: &[LabeledCircuit],
) -> Result<AccuracyLadder, gana_core::CoreError> {
    let mut totals = [0usize; 3];
    let mut counted = 0usize;
    for lc in circuits {
        let design = pipeline.recognize(&lc.circuit)?;
        // Ground truth by name, looked up against the (preprocessed) graph.
        let truth_name = |vertex: usize| -> Option<&str> {
            let class = if let Some(d) = design.graph.device_name(vertex) {
                lc.device_class.get(d).copied()
            } else {
                design
                    .graph
                    .net_name(vertex)
                    .and_then(|n| lc.net_class.get(n).copied())
            }?;
            lc.class_names.get(class).map(String::as_str)
        };
        let class_name = |c: usize| -> &str {
            pipeline
                .class_names()
                .get(c)
                .map(String::as_str)
                .unwrap_or("?")
        };
        for v in 0..design.graph.vertex_count() {
            let Some(truth) = truth_name(v) else { continue };
            counted += 1;
            if class_name(design.gcn_class[v]) == truth {
                totals[0] += 1;
            }
            if class_name(design.smoothed_class[v]) == truth {
                totals[1] += 1;
            }
            if design.final_label[v] == truth {
                totals[2] += 1;
            }
        }
    }
    let denom = counted.max(1) as f64;
    Ok(AccuracyLadder {
        gcn: totals[0] as f64 / denom,
        post1: totals[1] as f64 / denom,
        post2: totals[2] as f64 / denom,
        counted,
    })
}

/// Device-only accuracy ladder (the paper's phased-array metric counts
/// devices: "all 522 devices (100%) are classified correctly").
///
/// # Errors
///
/// Propagates pipeline failures.
pub fn evaluate_device_ladder(
    pipeline: &Pipeline,
    circuits: &[LabeledCircuit],
) -> Result<AccuracyLadder, gana_core::CoreError> {
    let mut totals = [0usize; 3];
    let mut counted = 0usize;
    for lc in circuits {
        let design = pipeline.recognize(&lc.circuit)?;
        let class_name = |c: usize| -> &str {
            pipeline
                .class_names()
                .get(c)
                .map(String::as_str)
                .unwrap_or("?")
        };
        for v in design.graph.element_vertices() {
            let Some(device) = design.graph.device_name(v) else {
                continue;
            };
            let Some(&class) = lc.device_class.get(device) else {
                continue;
            };
            let Some(truth) = lc.class_names.get(class) else {
                continue;
            };
            counted += 1;
            if class_name(design.gcn_class[v]) == truth {
                totals[0] += 1;
            }
            if class_name(design.smoothed_class[v]) == truth {
                totals[1] += 1;
            }
            if &design.final_label[v] == truth {
                totals[2] += 1;
            }
        }
    }
    let denom = counted.max(1) as f64;
    Ok(AccuracyLadder {
        gcn: totals[0] as f64 / denom,
        post1: totals[1] as f64 / denom,
        post2: totals[2] as f64 / denom,
        counted,
    })
}

/// Per-final-label device counts of a recognized design (Fig. 7 style map).
pub fn label_histogram(design: &gana_core::RecognizedDesign) -> BTreeMap<String, usize> {
    let mut hist = BTreeMap::new();
    for v in design.graph.element_vertices() {
        *hist.entry(design.final_label[v].clone()).or_insert(0) += 1;
    }
    hist
}

/// Builds the task-appropriate pipeline around a trained model.
pub fn make_pipeline(trainer: Trainer, class_names: &[&str], task: Task) -> Pipeline {
    Pipeline::new(
        trainer.into_model(),
        class_names.iter().map(|s| s.to_string()).collect(),
        gana_primitives::PrimitiveLibrary::standard().expect("shipped templates parse"),
        task,
    )
}
