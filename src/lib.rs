//! # GANA — GCN-based automated netlist annotation for analog circuits
//!
//! A from-scratch Rust reproduction of *GANA: Graph Convolutional Network
//! Based Automated Netlist Annotation for Analog Circuits* (Kunal et al.,
//! DATE 2020), the annotation front end of the ALIGN analog layout flow.
//!
//! This facade crate re-exports the whole system:
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`netlist`] | `gana-netlist` | SPICE parser, flattening, preprocessing |
//! | [`graph`] | `gana-graph` | bipartite circuit graph, features, Laplacians, CCC, VF2 |
//! | [`sparse`] | `gana-sparse` | dense/CSR linear algebra, Lanczos |
//! | [`gnn`] | `gana-gnn` | spectral ChebNet, Graclus pooling, training |
//! | [`primitives`] | `gana-primitives` | 21-template library + annotation |
//! | [`datasets`] | `gana-datasets` | synthetic labeled corpora |
//! | [`core`] | `gana-core` | the recognition pipeline + postprocessing |
//! | [`incremental`] | `gana-incremental` | netlist diffing + incremental re-annotation |
//! | [`layout`] | `gana-layout` | constraint-driven symbolic placer |
//! | [`serve`] | `gana-serve` | concurrent annotation service + TCP daemon |
//! | [`persist`] | `gana-persist` | versioned binary snapshots for warm starts |
//! | [`shard`] | `gana-shard` | consistent-hash router + supervised engine shards |
//! | [`loadgen`] | `gana-loadgen` | open-loop Poisson load generator + latency histograms |
//!
//! # Quickstart
//!
//! ```
//! use gana::core::{Pipeline, Task};
//! use gana::gnn::{GcnConfig, GcnModel};
//! use gana::primitives::PrimitiveLibrary;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // Parse + flatten a SPICE netlist.
//! let lib = gana::netlist::parse_library(
//!     "M0 id id gnd! gnd! NMOS\nM1 tail id gnd! gnd! NMOS\n\
//!      M2 o1 in1 tail gnd! NMOS\nM3 o2 in2 tail gnd! NMOS\n.END\n",
//! )?;
//! let flat = gana::netlist::flatten(&lib)?;
//!
//! // Build a pipeline (a real flow trains the model first; see the
//! // `experiments` binary and EXPERIMENTS.md).
//! let model = GcnModel::new(GcnConfig { num_classes: 2, ..GcnConfig::default() })?;
//! let pipeline = Pipeline::new(
//!     model,
//!     vec!["ota".into(), "bias".into()],
//!     PrimitiveLibrary::standard()?,
//!     Task::OtaBias,
//! );
//! let design = pipeline.recognize(&flat)?;
//! assert!(design.hierarchy.size() > 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;

pub use gana_core as core;
pub use gana_datasets as datasets;
pub use gana_gnn as gnn;
pub use gana_graph as graph;
pub use gana_incremental as incremental;
pub use gana_layout as layout;
pub use gana_loadgen as loadgen;
pub use gana_netlist as netlist;
pub use gana_persist as persist;
pub use gana_primitives as primitives;
pub use gana_serve as serve;
pub use gana_shard as shard;
pub use gana_sparse as sparse;
