//! End-to-end test of the `gana` CLI binary: generate → inspect → train →
//! annotate with checkpoint round-trip through the filesystem.

use std::path::PathBuf;
use std::process::Command;

fn gana() -> Command {
    Command::new(env!("CARGO_BIN_EXE_gana"))
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gana_cli_{tag}"));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

#[test]
fn generate_then_inspect() {
    let dir = temp_dir("inspect");
    let netlist = dir.join("sc.sp");
    let out = gana()
        .args(["generate", "--kind", "sc-filter", "--out"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(netlist.exists());

    let out = gana().arg("inspect").arg(&netlist).output().expect("runs");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("devices"), "{text}");
    assert!(text.contains("primitives:"), "{text}");
    assert!(text.contains("DP_N"), "telescopic OTA's pair found: {text}");
}

#[test]
fn train_checkpoint_annotate_roundtrip() {
    let dir = temp_dir("train");
    let ckpt = dir.join("ota.ckpt");
    let netlist = dir.join("design.sp");
    let export = dir.join("annotated.sp");

    let out = gana()
        .args(["generate", "--kind", "ota", "--seed", "3", "--out"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Tiny training run: the test checks plumbing, not accuracy.
    let out = gana()
        .args([
            "train",
            "--task",
            "ota",
            "--circuits",
            "16",
            "--epochs",
            "2",
            "--out",
        ])
        .arg(&ckpt)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(ckpt.exists());

    let dot = dir.join("hierarchy.dot");
    let out = gana()
        .arg("annotate")
        .arg(&netlist)
        .arg("--model")
        .arg(&ckpt)
        .args(["--task", "ota", "--export"])
        .arg(&export)
        .arg("--dot")
        .arg(&dot)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("hierarchy:"), "{text}");
    let dot_text = std::fs::read_to_string(&dot).expect("dot written");
    assert!(dot_text.starts_with("digraph"), "{dot_text}");

    // The exported hierarchical netlist parses and flattens back to the
    // same device count as the *preprocessed* input (the pipeline folds
    // parallel splits, dummies, and decaps before recognition).
    let exported = std::fs::read_to_string(&export).expect("written");
    let lib = gana::netlist::parse_library(&exported).expect("parses");
    assert!(!lib.subckts().is_empty(), "sub-blocks exported");
    let flat = gana::netlist::flatten(&lib).expect("flattens");
    let original = std::fs::read_to_string(&netlist).expect("readable");
    let original_lib = gana::netlist::parse_library(&original).expect("parses");
    let (clean, _) = gana::netlist::preprocess(
        original_lib.top(),
        gana::netlist::PreprocessOptions::default(),
    )
    .expect("preprocesses");
    assert_eq!(flat.device_count(), clean.device_count());

    // Incremental re-annotation against a baseline revision: identical
    // revisions take the full-splice path and report it.
    let out = gana()
        .arg("annotate")
        .arg(&netlist)
        .arg("--model")
        .arg(&ckpt)
        .args(["--task", "ota", "--baseline"])
        .arg(&netlist)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("incremental vs"), "{text}");
    assert!(text.contains("full splice"), "{text}");
    assert!(text.contains("hierarchy:"), "{text}");
}

#[test]
fn submit_exits_nonzero_on_per_job_error() {
    use gana::core::{Pipeline, Task};
    use gana::gnn::{GcnConfig, GcnModel};
    use gana::primitives::PrimitiveLibrary;
    use gana::serve::server::{serve, ServerConfig};
    use gana::serve::Engine;

    // In-process daemon on an ephemeral port; the model is untrained —
    // per-job error handling doesn't depend on accuracy.
    let pipeline = Pipeline::new(
        GcnModel::new(GcnConfig {
            conv_channels: vec![8, 8],
            filter_order: 4,
            fc_dim: 16,
            num_classes: 2,
            dropout: 0.0,
            batch_norm: false,
            ..GcnConfig::default()
        })
        .expect("valid config"),
        vec!["ota".into(), "bias".into()],
        PrimitiveLibrary::standard().expect("library parses"),
        Task::OtaBias,
    );
    let engine = std::sync::Arc::new(Engine::builder().pipeline(pipeline).workers(2).build());
    let handle = serve(
        engine,
        ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            stats_interval: None,
            snapshot_interval: None,
        },
    )
    .expect("binds an ephemeral port");
    let addr = handle.local_addr().to_string();

    let dir = temp_dir("submit_err");
    let garbage = dir.join("garbage.sp");
    std::fs::write(&garbage, "M0 not a netlist\n").expect("writes");

    let out = gana()
        .arg("submit")
        .arg(&garbage)
        .args(["--task", "ota", "--addr", &addr])
        .output()
        .expect("runs");
    assert!(
        !out.status.success(),
        "a structured per-job error must exit non-zero: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(
        err.contains("parse"),
        "error names the job error code: {err}"
    );

    handle.shutdown();
}

#[test]
fn bad_usage_fails_cleanly() {
    let out = gana().arg("annotate").output().expect("runs");
    assert!(!out.status.success(), "missing args must fail");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("error:"), "{err}");

    let out = gana().arg("frobnicate").output().expect("runs");
    assert!(!out.status.success());

    let out = gana().arg("help").output().expect("runs");
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
