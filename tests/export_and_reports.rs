//! Integration tests for the output artifacts: hierarchical SPICE export,
//! text reports, and the Graphviz hierarchy, across generated designs.

use gana::core::{export, report, Pipeline, Task};
use gana::datasets::{ota, rf};
use gana::gnn::{GcnConfig, GcnModel};
use gana::primitives::PrimitiveLibrary;

fn pipeline(task: Task, names: &[&str]) -> Pipeline {
    let config = GcnConfig {
        conv_channels: vec![4, 4],
        filter_order: 2,
        fc_dim: 8,
        num_classes: names.len(),
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    Pipeline::new(
        GcnModel::new(config).expect("valid"),
        names.iter().map(|s| s.to_string()).collect(),
        PrimitiveLibrary::standard().expect("templates"),
        task,
    )
}

#[test]
fn export_flatten_round_trip_across_ota_space() {
    let pipeline = pipeline(Task::OtaBias, &["ota", "bias"]);
    for (i, topology) in ota::OtaTopology::ALL.into_iter().enumerate() {
        let lc = ota::generate(ota::OtaSpec {
            topology,
            pmos_input: i % 2 == 0,
            bias: ota::BiasStyle::ALL[i % 4],
            seed: 17,
        });
        let design = pipeline.recognize(&lc.circuit).expect("pipeline runs");
        let text = export::to_hierarchical_spice(&design);
        let lib = gana::netlist::parse_library(&text)
            .unwrap_or_else(|e| panic!("{topology:?} export must parse: {e}\n{text}"));
        let flat = gana::netlist::flatten(&lib).expect("export flattens");
        assert_eq!(
            flat.device_count(),
            design.circuit.device_count(),
            "{topology:?}: device count preserved through export"
        );
        // Every device of the design appears (with its instance prefix).
        for d in design.circuit.devices() {
            assert!(
                flat.devices()
                    .iter()
                    .any(|fd| fd.name().ends_with(d.name())),
                "{topology:?}: device {} lost in export",
                d.name()
            );
        }
    }
}

#[test]
fn reports_mention_every_sub_block_label() {
    let pipeline = pipeline(Task::Rf, &["lna", "mixer", "oscillator"]);
    let lc = rf::generate(rf::ReceiverSpec {
        lna: rf::LnaKind::Cascode,
        mixer: rf::MixerKind::Gilbert,
        osc: rf::OscKind::CrossCoupledLc,
        seed: 3,
    });
    let design = pipeline.recognize(&lc.circuit).expect("runs");
    let summary = report::class_summary(&design);
    let full = report::full_report(&design);
    let dot = report::to_dot(&design);
    for block in &design.sub_blocks {
        assert!(
            summary.contains(&block.label),
            "summary misses {}",
            block.label
        );
        assert!(full.contains(&block.label), "report misses {}", block.label);
        assert!(dot.contains(&block.label), "dot misses {}", block.label);
    }
    // Every device appears in the dot output exactly once as a leaf label.
    for device in design.sub_blocks.iter().flat_map(|b| &b.devices) {
        assert_eq!(
            dot.matches(&format!("[label=\"{device}\"")).count(),
            1,
            "device {device} should appear once in dot"
        );
    }
}

#[test]
fn constraint_annotations_round_trip_as_comments() {
    let pipeline = pipeline(Task::OtaBias, &["ota", "bias"]);
    let lc = ota::generate(ota::OtaSpec {
        topology: ota::OtaTopology::Telescopic,
        pmos_input: false,
        bias: ota::BiasStyle::DiodeResistor,
        seed: 5,
    });
    let design = pipeline.recognize(&lc.circuit).expect("runs");
    let text = export::to_hierarchical_spice(&design);
    let annotated = text
        .lines()
        .filter(|l| l.starts_with("* @constraint"))
        .count();
    assert_eq!(
        annotated,
        design.constraints.len(),
        "one comment per detected constraint"
    );
    // Comments must not break re-parsing.
    assert!(gana::netlist::parse_library(&text).is_ok());
}
