//! End-to-end integration: train a small OTA/bias model, then verify the
//! accuracy ladder on held-out circuits and the SC filter (Table II rows
//! 1–2). Uses reduced sizes so the test stays fast in debug builds.

use gana::core::Task;
use gana::datasets::{ota, ota_classes, sc_filter};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};

fn small_trainer() -> gana::gnn::Trainer {
    let corpus = ota::corpus(48, 1);
    let model_config = GcnConfig {
        conv_channels: vec![8, 16],
        filter_order: 8,
        fc_dim: 32,
        num_classes: 2,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 8,
        learning_rate: 5e-3,
        ..TrainerConfig::default()
    };
    eval::train_on_corpus(&corpus, model_config, trainer_config, 7).expect("training runs")
}

#[test]
fn ota_training_reaches_paper_band() {
    let trainer = small_trainer();
    let last = trainer.history().last().expect("epochs ran");
    // The paper reports 88.89% training accuracy; with a smaller corpus and
    // model we ask for the same ballpark.
    assert!(
        last.train_accuracy > 0.80,
        "training accuracy too low: {:.3}",
        last.train_accuracy
    );
}

#[test]
fn postprocessing_reaches_100_percent_on_held_out_otas() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let test = ota::corpus(12, 999_001);
    let ladder = eval::evaluate_ladder(&pipeline, &test.samples).expect("eval runs");
    assert!(
        ladder.gcn > 0.6,
        "GCN alone should be well above chance: {:.3}",
        ladder.gcn
    );
    assert!(
        ladder.post2 >= 0.999,
        "postprocessing must reach 100% (paper Table II): got {:.4}",
        ladder.post2
    );
}

#[test]
fn sc_filter_with_unseen_telescopic_ota_is_fully_recovered() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let sc = sc_filter::generate(0);
    let ladder = eval::evaluate_ladder(&pipeline, std::slice::from_ref(&sc)).expect("eval runs");
    assert!(
        ladder.post2 >= 0.999,
        "SC filter must be fully annotated after postprocessing: {:.4}",
        ladder.post2
    );
}

#[test]
fn recognized_hierarchy_covers_every_device() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &ota_classes::NAMES, Task::OtaBias);
    let sc = sc_filter::generate(0);
    let design = pipeline.recognize(&sc.circuit).expect("pipeline runs");
    assert_eq!(
        design.hierarchy.elements().len(),
        design.graph.element_count(),
        "every device appears exactly once in the hierarchy"
    );
    assert!(design.sub_blocks.len() >= 2, "SC network and OTA at least");
    assert!(
        design
            .constraints
            .iter()
            .any(|c| { c.kind == gana::primitives::ConstraintKind::Symmetry }),
        "the telescopic OTA's differential pair must yield a symmetry constraint"
    );
}
