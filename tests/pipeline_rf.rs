//! End-to-end integration: RF recognition and the phased-array system
//! (Table II rows 3–4, Fig. 7), at reduced scale for test speed.

use gana::core::Task;
use gana::datasets::{phased_array, rf, rf_classes};
use gana::eval;
use gana::gnn::{GcnConfig, TrainerConfig};

fn small_trainer() -> gana::gnn::Trainer {
    let corpus = rf::corpus(54, 2);
    let model_config = GcnConfig {
        conv_channels: vec![8, 16],
        filter_order: 8,
        fc_dim: 32,
        num_classes: 3,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    };
    let trainer_config = TrainerConfig {
        epochs: 8,
        learning_rate: 5e-3,
        ..TrainerConfig::default()
    };
    eval::train_on_corpus(&corpus, model_config, trainer_config, 9).expect("training runs")
}

#[test]
fn rf_receivers_reach_100_percent_after_postprocessing() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    let test = rf::corpus(9, 555_001);
    let ladder = eval::evaluate_ladder(&pipeline, &test.samples).expect("eval runs");
    assert!(ladder.gcn > 0.5, "GCN above chance: {:.3}", ladder.gcn);
    assert!(
        ladder.post2 >= 0.999,
        "RF test must reach 100% after Post-II (paper): got {:.4}",
        ladder.post2
    );
}

#[test]
fn phased_array_devices_fully_classified() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    // Two channels keep the debug-build runtime reasonable; the structure
    // (LNA + BPF + mixer + LO chain per channel) is the full one.
    let system = phased_array::generate_with_channels(2, 0);
    let ladder =
        eval::evaluate_device_ladder(&pipeline, std::slice::from_ref(&system)).expect("eval runs");
    assert!(
        ladder.post2 >= 0.999,
        "all devices classified after Post-II (paper Fig. 7): got {:.4}",
        ladder.post2
    );
    // The ladder must be monotone from post-I to post-II on this system.
    assert!(ladder.post2 >= ladder.post1);
}

#[test]
fn phased_array_recovers_bpf_buf_inv_labels() {
    let trainer = small_trainer();
    let pipeline = eval::make_pipeline(trainer, &rf_classes::NAMES, Task::Rf);
    let system = phased_array::generate_with_channels(2, 0);
    let design = pipeline.recognize(&system.circuit).expect("pipeline runs");
    let hist = eval::label_histogram(&design);
    // Classes outside the GCN space must be synthesized by postprocessing.
    for label in ["bpf", "buf", "inv", "lna", "mixer", "oscillator"] {
        assert!(
            hist.get(label).copied().unwrap_or(0) > 0,
            "label {label} missing from {hist:?}"
        );
    }
}

#[test]
fn untrained_pipeline_still_produces_complete_structure() {
    // Even a random-weight model yields a full hierarchy: the structural
    // stages are deterministic. (No accuracy claim here.)
    let model = gana::gnn::GcnModel::new(GcnConfig {
        conv_channels: vec![4, 4],
        filter_order: 2,
        fc_dim: 8,
        num_classes: 3,
        dropout: 0.0,
        batch_norm: false,
        ..GcnConfig::default()
    })
    .expect("valid config");
    let pipeline = gana::core::Pipeline::new(
        model,
        rf_classes::NAMES.iter().map(|s| s.to_string()).collect(),
        gana::primitives::PrimitiveLibrary::standard().expect("templates"),
        Task::Rf,
    );
    let receiver = rf::generate(rf::ReceiverSpec {
        lna: rf::LnaKind::Cascode,
        mixer: rf::MixerKind::Gilbert,
        osc: rf::OscKind::CrossCoupledLc,
        seed: 5,
    });
    let design = pipeline
        .recognize(&receiver.circuit)
        .expect("pipeline runs");
    assert_eq!(
        design.hierarchy.elements().len(),
        design.graph.element_count()
    );
    assert_eq!(design.final_label.len(), design.graph.vertex_count());
}
