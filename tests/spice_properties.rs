//! Property-based integration tests over the SPICE layer and the graph
//! abstractions, spanning `gana-netlist`, `gana-graph`, and the generators.

use gana::datasets::{ota, rf};
use gana::graph::{laplacian, CircuitGraph, GraphOptions};
use gana::netlist::{flatten, parse_library, write_spice, SpiceLibrary};
use proptest::prelude::*;

/// Strategy: a generated OTA spec drawn from the full variant space.
fn ota_spec() -> impl Strategy<Value = ota::OtaSpec> {
    (0usize..6, any::<bool>(), 0usize..4, 0u64..1000).prop_map(|(t, p, b, seed)| ota::OtaSpec {
        topology: ota::OtaTopology::ALL[t],
        pmos_input: p,
        bias: ota::BiasStyle::ALL[b],
        seed,
    })
}

fn rf_spec() -> impl Strategy<Value = rf::ReceiverSpec> {
    (0usize..3, 0usize..3, 0usize..3, 0u64..1000).prop_map(|(l, m, o, seed)| rf::ReceiverSpec {
        lna: rf::LnaKind::ALL[l],
        mixer: rf::MixerKind::ALL[m],
        osc: rf::OscKind::ALL[o],
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Writer → parser round-trip preserves every generated OTA netlist:
    /// structure exactly, numeric values within 1e-12 relative.
    #[test]
    fn spice_round_trip_preserves_ota_circuits(spec in ota_spec()) {
        let lc = ota::generate(spec);
        let lib = SpiceLibrary::new(lc.circuit.clone());
        let text = write_spice(&lib);
        let again = parse_library(&text).expect("writer output parses");
        prop_assert_eq!(lc.circuit.device_count(), again.top().device_count());
        for (a, b) in lc.circuit.devices().iter().zip(again.top().devices()) {
            prop_assert_eq!(a.name(), b.name());
            prop_assert_eq!(a.kind(), b.kind());
            prop_assert_eq!(a.terminals(), b.terminals());
            prop_assert_eq!(a.model(), b.model());
            let close = |x: Option<f64>, y: Option<f64>| match (x, y) {
                (None, None) => true,
                (Some(x), Some(y)) => (x - y).abs() <= 1e-9 * x.abs().max(1e-18),
                _ => false,
            };
            prop_assert!(close(a.value(), b.value()), "{:?} vs {:?}", a.value(), b.value());
            prop_assert_eq!(a.params().len(), b.params().len());
            for (key, &x) in a.params() {
                prop_assert!(close(Some(x), b.param(key)), "param {}", key);
            }
        }
        prop_assert_eq!(lc.circuit.port_labels(), again.top().port_labels());
    }

    /// The bipartite invariant and Laplacian spectral bound hold for every
    /// generated receiver.
    #[test]
    fn graph_invariants_hold_for_receivers(spec in rf_spec()) {
        let lc = rf::generate(spec);
        let graph = CircuitGraph::build(&lc.circuit, GraphOptions::default());
        prop_assert!(graph.is_bipartite());
        prop_assert_eq!(
            graph.vertex_count(),
            graph.element_count() + graph.net_count()
        );
        let lap = laplacian::normalized_laplacian(&laplacian::adjacency(&graph))
            .expect("square");
        let lambda = gana::sparse::lanczos::largest_eigenvalue(&lap, 60, 1e-9)
            .expect("square");
        prop_assert!(lambda <= 2.0 + 1e-6, "spectral bound violated: {}", lambda);
    }

    /// Flattening a one-level hierarchical wrapper reproduces the flat
    /// circuit's devices (with the instance prefix).
    #[test]
    fn flatten_of_wrapped_circuit_matches_device_count(spec in ota_spec()) {
        let lc = ota::generate(spec);
        // Expose every non-rail net as a port of the wrapper subcircuit
        // and instantiate it once with identical net names.
        let ports: Vec<String> = lc
            .circuit
            .nets()
            .into_iter()
            .filter(|n| !lc.circuit.is_supply(n) && !lc.circuit.is_ground(n))
            .collect();
        let mut sub = gana::netlist::Circuit::with_ports("CORE", ports.clone());
        for d in lc.circuit.devices() {
            sub.add_device(d.clone()).expect("unique");
        }
        let mut top = gana::netlist::Circuit::new("top");
        top.add_device(
            gana::netlist::Device::new(
                "X1",
                gana::netlist::DeviceKind::Instance,
                ports,
            )
            .expect("instance")
            .with_model("CORE"),
        )
        .expect("unique");
        let mut lib = SpiceLibrary::new(top);
        lib.add_subckt(sub).expect("unique");
        let flat = flatten(&lib).expect("flattens");
        prop_assert_eq!(flat.device_count(), lc.circuit.device_count());
        // Device names carry the hierarchical prefix.
        for d in flat.devices() {
            prop_assert!(d.name().starts_with("X1/"), "name {}", d.name());
        }
    }

    /// Preprocessing never increases the device count and keeps the graph
    /// bipartite.
    #[test]
    fn preprocessing_shrinks_and_preserves_invariants(spec in ota_spec()) {
        let lc = ota::generate(spec);
        let (clean, report) = gana::netlist::preprocess(
            &lc.circuit,
            gana::netlist::PreprocessOptions::default(),
        )
        .expect("preprocess runs");
        prop_assert!(clean.device_count() <= lc.circuit.device_count());
        prop_assert_eq!(
            clean.device_count() + report.eliminated(),
            lc.circuit.device_count()
        );
        let graph = CircuitGraph::build(&clean, GraphOptions::default());
        prop_assert!(graph.is_bipartite());
    }
}
