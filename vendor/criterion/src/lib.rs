//! Offline vendored stand-in for `criterion`.
//!
//! Keeps the macro + builder API the workspace's benches use, but measures
//! with a simple adaptive wall-clock loop instead of criterion's statistical
//! machinery: warm up, estimate the per-iteration cost, then time enough
//! iterations to fill a short measurement window and report mean ns/iter
//! (plus throughput when configured). Honest numbers, tiny footprint.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value passthrough.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-benchmark measurement settings.
#[derive(Debug, Clone, Copy)]
struct Settings {
    /// Target wall-clock spent measuring one benchmark.
    measurement_time: Duration,
    /// Upper bound on timed iterations (analogue of criterion's sample size).
    max_iterations: u64,
}

impl Default for Settings {
    fn default() -> Settings {
        Settings {
            measurement_time: Duration::from_millis(300),
            max_iterations: 10_000_000,
        }
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    settings: Settings,
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.settings, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            settings: Settings::default(),
            throughput: None,
        }
    }
}

/// Group of related benchmarks sharing settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    settings: Settings,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Caps timed iterations (criterion's sample-size analogue).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.settings.max_iterations = (n as u64).max(1);
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.settings.measurement_time = t;
        self
    }

    /// Declares per-iteration throughput for rate reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.settings, self.throughput, &mut f);
        self
    }

    /// Runs a parameterized benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.into_benchmark_id());
        run_one(&label, self.settings, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (retained for API parity; nothing buffered).
    pub fn finish(&mut self) {}
}

/// Iteration driver handed to benchmark closures.
pub struct Bencher {
    settings: Settings,
    /// (total elapsed, iterations) accumulated by `iter`.
    measured: Option<(Duration, u64)>,
}

impl Bencher {
    /// Times `routine`, adaptively choosing the iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warmup + per-iteration estimate.
        let warmup_start = Instant::now();
        black_box(routine());
        let estimate = warmup_start.elapsed().max(Duration::from_nanos(1));

        let budget = self.settings.measurement_time;
        let iterations = (budget.as_nanos() / estimate.as_nanos()).clamp(1, u128::MAX) as u64;
        let iterations = iterations.min(self.settings.max_iterations).max(1);

        let start = Instant::now();
        for _ in 0..iterations {
            black_box(routine());
        }
        self.measured = Some((start.elapsed(), iterations));
    }
}

fn run_one(
    label: &str,
    settings: Settings,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        settings,
        measured: None,
    };
    f(&mut bencher);
    match bencher.measured {
        Some((elapsed, iterations)) => {
            let per_iter_ns = elapsed.as_nanos() as f64 / iterations as f64;
            let mut line = format!(
                "bench {label:<50} {:>14.1} ns/iter ({iterations} iters)",
                per_iter_ns
            );
            if let Some(tp) = throughput {
                let (amount, unit) = match tp {
                    Throughput::Bytes(n) => (n as f64, "B"),
                    Throughput::Elements(n) => (n as f64, "elem"),
                };
                let per_sec = amount * 1e9 / per_iter_ns;
                line.push_str(&format!(" {per_sec:>14.0} {unit}/s"));
            }
            println!("{line}");
        }
        None => println!("bench {label:<50} (no iter() call)"),
    }
}

/// Identifies a benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Builds an id from just the parameter value.
    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark label.
pub trait IntoBenchmarkId {
    /// The label text.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Units for rate reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Declares a benchmark group function, as in criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness `main`, as in criterion.
///
/// Accepts and ignores harness CLI arguments (`--bench`, filters) that
/// `cargo bench` passes to `harness = false` targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_measures() {
        let mut c = Criterion::default();
        let mut calls = 0u64;
        c.bench_function("noop", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10).throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(3), &3usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
