//! MPMC channels with `crossbeam-channel`-compatible surface.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Error returned by [`Sender::send`] when every receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

impl<T: fmt::Debug> std::error::Error for SendError<T> {}

/// Error returned by [`Sender::try_send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrySendError<T> {
    /// The bounded channel is at capacity.
    Full(T),
    /// Every receiver has been dropped.
    Disconnected(T),
}

impl<T> TrySendError<T> {
    /// Recovers the unsent message.
    pub fn into_inner(self) -> T {
        match self {
            TrySendError::Full(v) | TrySendError::Disconnected(v) => v,
        }
    }

    /// True when the failure was a full queue.
    pub fn is_full(&self) -> bool {
        matches!(self, TrySendError::Full(_))
    }
}

impl<T> fmt::Display for TrySendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrySendError::Full(_) => write!(f, "sending on a full channel"),
            TrySendError::Disconnected(_) => write!(f, "sending on a disconnected channel"),
        }
    }
}

impl<T: fmt::Debug> std::error::Error for TrySendError<T> {}

/// Error returned by [`Receiver::recv`] when the channel is empty and every
/// sender is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// No message ready.
    Empty,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => write!(f, "receiving on an empty channel"),
            TryRecvError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// Deadline passed with no message.
    Timeout,
    /// Channel empty and every sender dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => write!(f, "timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                write!(f, "receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    /// Waiters blocked in `recv` (signalled on push / sender-drop).
    not_empty: Condvar,
    /// Waiters blocked in bounded `send` (signalled on pop / receiver-drop).
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.queue.lock().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Sending half; cloneable (multi-producer).
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half; cloneable (multi-consumer).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Creates an unbounded channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    with_capacity(None)
}

/// Creates a bounded channel holding at most `cap` messages.
///
/// Unlike upstream crossbeam, `cap == 0` (rendezvous) is approximated as
/// capacity 1; the workspace never uses rendezvous channels.
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    with_capacity(Some(cap.max(1)))
}

fn with_capacity<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> std::fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> std::fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last sender: wake receivers so they observe disconnection.
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // Last receiver: wake blocked senders so they observe disconnection.
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Sends, blocking while a bounded channel is full.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if shared.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            match shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = shared
                        .not_full
                        .wait(queue)
                        .unwrap_or_else(PoisonError::into_inner);
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Sends without blocking; fails with `Full` on a saturated bounded
    /// channel. This is the backpressure primitive.
    pub fn try_send(&self, value: T) -> Result<(), TrySendError<T>> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        if shared.receivers.load(Ordering::SeqCst) == 0 {
            return Err(TrySendError::Disconnected(value));
        }
        if let Some(cap) = shared.capacity {
            if queue.len() >= cap {
                return Err(TrySendError::Full(value));
            }
        }
        queue.push_back(value);
        drop(queue);
        shared.not_empty.notify_one();
        Ok(())
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Channel capacity (`None` for unbounded).
    pub fn capacity(&self) -> Option<usize> {
        self.shared.capacity
    }
}

impl<T> Receiver<T> {
    /// Receives, blocking until a message arrives or all senders drop.
    pub fn recv(&self) -> Result<T, RecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvError);
            }
            queue = shared
                .not_empty
                .wait(queue)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Receives without blocking.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let shared = &*self.shared;
        let mut queue = shared.lock();
        if let Some(value) = queue.pop_front() {
            drop(queue);
            shared.not_full.notify_one();
            return Ok(value);
        }
        if shared.senders.load(Ordering::SeqCst) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Receives, blocking at most `timeout`.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        let deadline = Instant::now() + timeout;
        let shared = &*self.shared;
        let mut queue = shared.lock();
        loop {
            if let Some(value) = queue.pop_front() {
                drop(queue);
                shared.not_full.notify_one();
                return Ok(value);
            }
            if shared.senders.load(Ordering::SeqCst) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, result) = shared
                .not_empty
                .wait_timeout(queue, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            queue = guard;
            if result.timed_out() && queue.is_empty() {
                return Err(RecvTimeoutError::Timeout);
            }
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared.lock().len()
    }

    /// True when no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocking iterator draining the channel until disconnection.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter { receiver: self }
    }
}

/// Iterator over received messages; ends at disconnection.
pub struct Iter<'a, T> {
    receiver: &'a Receiver<T>,
}

impl<T> Iterator for Iter<'_, T> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        self.receiver.recv().ok()
    }
}

impl<'a, T> IntoIterator for &'a Receiver<T> {
    type Item = T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn unbounded_roundtrip() {
        let (tx, rx) = unbounded();
        tx.send(1).expect("send");
        tx.send(2).expect("send");
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        drop(tx);
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn bounded_try_send_reports_full() {
        let (tx, rx) = bounded(2);
        tx.try_send(1).expect("fits");
        tx.try_send(2).expect("fits");
        assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
        assert_eq!(rx.recv(), Ok(1));
        tx.try_send(3).expect("space freed");
    }

    #[test]
    fn bounded_send_blocks_until_pop() {
        let (tx, rx) = bounded(1);
        tx.send(1).expect("fits");
        let t = thread::spawn(move || tx.send(2).expect("unblocks"));
        thread::sleep(Duration::from_millis(20));
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        t.join().expect("join");
    }

    #[test]
    fn mpmc_every_message_delivered_once() {
        let (tx, rx) = bounded(8);
        let consumers: Vec<_> = (0..4)
            .map(|_| {
                let rx = rx.clone();
                thread::spawn(move || rx.iter().count())
            })
            .collect();
        drop(rx);
        for i in 0..100 {
            tx.send(i).expect("send");
        }
        drop(tx);
        let total: usize = consumers.into_iter().map(|t| t.join().expect("join")).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn recv_timeout_times_out() {
        let (tx, rx) = bounded::<u8>(1);
        let err = rx.recv_timeout(Duration::from_millis(10));
        assert_eq!(err, Err(RecvTimeoutError::Timeout));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn send_to_dropped_receiver_fails() {
        let (tx, rx) = bounded(1);
        drop(rx);
        assert_eq!(tx.send(9), Err(SendError(9)));
    }
}
