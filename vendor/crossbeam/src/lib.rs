//! Offline vendored stand-in for `crossbeam`.
//!
//! Provides the two pieces the workspace uses:
//!
//! * [`channel`] — multi-producer **multi-consumer** channels (bounded and
//!   unbounded) built on a `Mutex<VecDeque>` + two condvars. Semantics match
//!   `crossbeam-channel`: cloneable `Sender`/`Receiver`, blocking `send` on a
//!   full bounded channel, `try_send` that reports `Full`/`Disconnected`,
//!   `recv_timeout`, and disconnection when all peers of the other side drop.
//! * [`thread`] — scoped threads with crossbeam's closure signature
//!   (`|scope| … scope.spawn(|_| …)`), delegating to [`std::thread::scope`].

pub mod channel;
pub mod thread;
