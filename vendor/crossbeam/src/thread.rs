//! Scoped threads with crossbeam's API shape, delegating to `std`.

/// Result of a scope or join: payload or the panic box.
pub type Result<T> = std::result::Result<T, Box<dyn std::any::Any + Send + 'static>>;

/// Scope handle passed to [`scope`] closures and to spawned threads.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Handle to a thread spawned inside a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread and returns its result (Err on panic).
    pub fn join(self) -> Result<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. Crossbeam passes the scope back into the
    /// closure (enabling nested spawns), hence the one-argument signature.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || {
                let scope = Scope { inner };
                f(&scope)
            }),
        }
    }
}

/// Runs `f` with a scope in which borrowed-data threads can be spawned; all
/// spawned threads are joined before `scope` returns.
///
/// Matching crossbeam, the `Err` case would carry a panic from an unjoined
/// child; with `std::thread::scope` underneath, an unjoined child panic
/// propagates as a panic instead, so the return here is always `Ok` — callers
/// uniformly `.expect()` it, which stays correct.
pub fn scope<'env, F, R>(f: F) -> Result<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| {
        let wrapper = Scope { inner: s };
        f(&wrapper)
    }))
}

#[cfg(test)]
mod tests {
    #[test]
    fn scoped_threads_borrow_and_join() {
        let data = [1, 2, 3, 4];
        let total: i32 = super::scope(|scope| {
            let handles: Vec<_> = data.iter().map(|&x| scope.spawn(move |_| x * 2)).collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("no panic"))
                .sum()
        })
        .expect("scope");
        assert_eq!(total, 20);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let result = super::scope(|scope| {
            scope
                .spawn(|inner| inner.spawn(|_| 7).join().expect("inner"))
                .join()
                .expect("outer")
        })
        .expect("scope");
        assert_eq!(result, 7);
    }
}
