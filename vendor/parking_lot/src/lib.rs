//! Offline vendored stand-in for `parking_lot`.
//!
//! Wraps the `std::sync` primitives behind `parking_lot`'s non-poisoning
//! API: `lock()` / `read()` / `write()` return guards directly instead of
//! `Result`s, recovering from poison (a panicked holder) transparently,
//! which matches parking_lot's semantics of not poisoning at all.

use std::sync::{self, PoisonError};
use std::time::Duration;

/// Mutual exclusion lock (non-poisoning facade over [`std::sync::Mutex`]).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Reader-writer lock (non-poisoning facade over [`std::sync::RwLock`]).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    /// Attempts to acquire a shared read guard without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.inner.try_read() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Attempts to acquire an exclusive write guard without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.inner.try_write() {
            Ok(guard) => Some(guard),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// Condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Blocks on the guard until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        take_guard(guard, |g| {
            self.inner.wait(g).unwrap_or_else(PoisonError::into_inner)
        });
    }

    /// Blocks until notified or `timeout` elapses; returns `true` on timeout.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: Duration) -> bool {
        let mut timed_out = false;
        take_guard(guard, |g| {
            let (g, result) = self
                .inner
                .wait_timeout(g, timeout)
                .unwrap_or_else(PoisonError::into_inner);
            timed_out = result.timed_out();
            g
        });
        timed_out
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Runs `f` on the owned guard, restoring it into `slot` afterwards.
///
/// `std`'s condvar consumes and returns the guard; `parking_lot`'s mutates it
/// in place. Bridging the two needs a brief move out of the `&mut` slot.
fn take_guard<'a, T>(
    slot: &mut MutexGuard<'a, T>,
    f: impl FnOnce(MutexGuard<'a, T>) -> MutexGuard<'a, T>,
) {
    // SAFETY: `slot` is a valid guard; we read it out, hand it to `f`, and
    // write the returned guard straight back before anyone can observe the
    // hole. `f` (std condvar wait) never panics while holding the guard out
    // of the slot except on poison, which `into_inner` converts back.
    unsafe {
        let guard = std::ptr::read(slot);
        let guard = f(guard);
        std::ptr::write(slot, guard);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(7);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 14);
        drop((a, b));
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }

    #[test]
    fn condvar_wakes() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cvar) = &*pair2;
            *lock.lock() = true;
            cvar.notify_one();
        });
        let (lock, cvar) = &*pair;
        let mut ready = lock.lock();
        while !*ready {
            ready = {
                let mut g = ready;
                cvar.wait(&mut g);
                g
            };
        }
        assert!(*ready);
        t.join().expect("join");
    }

    #[test]
    fn condvar_wait_for_times_out() {
        let lock = Mutex::new(());
        let cvar = Condvar::new();
        let mut guard = lock.lock();
        assert!(cvar.wait_for(&mut guard, Duration::from_millis(10)));
    }
}
