//! `any::<T>()` — default strategies per type.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// The strategy type `any` returns.
    type Strategy: Strategy<Value = Self>;

    /// The full-domain strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T`, like `proptest::arbitrary::any`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct AnyPrimitive<T>(core::marker::PhantomData<T>);

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }

        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;

            fn arbitrary() -> Self::Strategy {
                AnyPrimitive(core::marker::PhantomData)
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut StdRng) -> bool {
        rng.gen::<bool>()
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

impl Strategy for AnyPrimitive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut StdRng) -> f64 {
        // Finite, sign-symmetric, spanning several magnitudes.
        let mantissa: f64 = rng.gen_range(-1.0..1.0);
        let exp: i32 = rng.gen_range(-64..64);
        mantissa * 2f64.powi(exp)
    }
}

impl Arbitrary for f64 {
    type Strategy = AnyPrimitive<f64>;

    fn arbitrary() -> Self::Strategy {
        AnyPrimitive(core::marker::PhantomData)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn any_bool_hits_both_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let strat = any::<bool>();
        let mut seen = [false, false];
        for _ in 0..64 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert_eq!(seen, [true, true]);
    }
}
