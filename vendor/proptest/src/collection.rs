//! Collection strategies (`vec`).

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

/// Inclusive-exclusive size bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> SizeRange {
        SizeRange {
            lo: exact,
            hi: exact + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(range: core::ops::Range<usize>) -> SizeRange {
        assert!(range.start < range.end, "empty vec size range");
        SizeRange {
            lo: range.start,
            hi: range.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(range: core::ops::RangeInclusive<usize>) -> SizeRange {
        SizeRange {
            lo: *range.start(),
            hi: *range.end() + 1,
        }
    }
}

/// Strategy producing `Vec`s of `element` with a length drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
        let len = if self.size.lo + 1 >= self.size.hi {
            self.size.lo
        } else {
            rng.gen_range(self.size.lo..self.size.hi)
        };
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn sizes_respected() {
        let mut rng = StdRng::seed_from_u64(3);
        let strat = vec(0usize..10, 2..5);
        for _ in 0..100 {
            let v = strat.generate(&mut rng);
            assert!((2..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
        let exact = vec(0usize..10, 7usize);
        assert_eq!(exact.generate(&mut rng).len(), 7);
    }
}
