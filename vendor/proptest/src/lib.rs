//! Offline vendored stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro, `prop_assert!`/`prop_assert_eq!`, the
//! [`strategy::Strategy`] trait with `prop_map`/`prop_flat_map`, range and
//! tuple strategies,
//! [`strategy::Just`], `any::<T>()`, [`collection::vec`], and string
//! strategies from a small regex subset (`[...]` classes, groups, `|`,
//! `?`/`*`/`+`/`{m,n}` quantifiers).
//!
//! Differences from upstream, deliberate for an offline test stub:
//! * no shrinking — a failing case panics with its case number and the
//!   per-test seed, which is deterministic, so reruns reproduce it;
//! * no persistence — `.proptest-regressions` files are ignored;
//! * default case count is 64 (override per test with
//!   `ProptestConfig::with_cases`, globally with `PROPTEST_CASES`).

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub use arbitrary::any;

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    /// Namespaced access mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::string;
    }
}

/// Asserts a condition inside a property test.
///
/// Upstream returns an `Err` for the runner to shrink; this stub panics,
/// which the runner catches to report the failing case before re-raising.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+)
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        assert_ne!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_ne!($left, $right, $($fmt)+)
    };
}

/// Declares property tests: each `fn name(pat in strategy, …) { body }`
/// becomes a `#[test]` that runs the body over generated cases.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr)) => {};
    (@run ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(config, stringify!($name));
            runner.run(|rng| {
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), rng);)+
                $body
            });
        }
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}
