//! The [`Strategy`] trait and combinators.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform};

/// A recipe for generating values of one type.
///
/// Unlike upstream (which builds a value *tree* for shrinking), this stub
/// generates plain values from a seeded RNG.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Transforms generated values.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Chains into a value-dependent follow-up strategy.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keeps only values passing `pred`, retrying generation (bounded).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }
}

/// Strategies behind references delegate.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn generate(&self, rng: &mut StdRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, F, S2> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;

    fn generate(&self, rng: &mut StdRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        for _ in 0..1000 {
            let candidate = self.inner.generate(rng);
            if (self.pred)(&candidate) {
                return candidate;
            }
        }
        panic!(
            "prop_filter {:?} rejected 1000 consecutive candidates",
            self.whence
        );
    }
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn combinators_compose() {
        let mut rng = StdRng::seed_from_u64(1);
        let strat = (1usize..5)
            .prop_flat_map(|n| (Just(n), 0..n))
            .prop_map(|(n, k)| (n, k));
        for _ in 0..200 {
            let (n, k) = strat.generate(&mut rng);
            assert!((1..5).contains(&n) && k < n);
        }
    }
}
