//! String strategies from a regex subset.
//!
//! Upstream proptest treats `&str` as a regex-shaped string strategy. This
//! stub supports the subset the workspace's tests use — literals, `[...]`
//! character classes with ranges, groups, `|` alternation, and the
//! `?` / `*` / `+` / `{m}` / `{m,n}` quantifiers. Unbounded quantifiers are
//! capped at 8 repetitions.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::Rng;

const UNBOUNDED_CAP: u32 = 8;

#[derive(Debug, Clone)]
enum Node {
    Literal(char),
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// Alternatives, each a sequence.
    Group(Vec<Vec<Node>>),
    Repeat(Box<Node>, u32, u32),
}

/// Compiled regex-subset generator.
#[derive(Debug, Clone)]
pub struct RegexStrategy {
    seq: Vec<Node>,
}

impl RegexStrategy {
    /// Compiles `pattern`, panicking on syntax outside the supported subset.
    pub fn new(pattern: &str) -> RegexStrategy {
        let mut chars: Vec<char> = pattern.chars().collect();
        chars.push('\0'); // sentinel
        let mut pos = 0;
        let alternatives = parse_alternatives(&chars, &mut pos);
        assert_eq!(
            chars[pos], '\0',
            "unexpected trailing regex syntax in {pattern:?}"
        );
        let seq = if alternatives.len() == 1 {
            alternatives.into_iter().next().expect("one alternative")
        } else {
            vec![Node::Group(alternatives)]
        };
        RegexStrategy { seq }
    }
}

fn parse_alternatives(chars: &[char], pos: &mut usize) -> Vec<Vec<Node>> {
    let mut alternatives = vec![parse_sequence(chars, pos)];
    while chars[*pos] == '|' {
        *pos += 1;
        alternatives.push(parse_sequence(chars, pos));
    }
    alternatives
}

fn parse_sequence(chars: &[char], pos: &mut usize) -> Vec<Node> {
    let mut seq = Vec::new();
    loop {
        let atom = match chars[*pos] {
            '\0' | ')' | '|' => break,
            '(' => {
                *pos += 1;
                let alternatives = parse_alternatives(chars, pos);
                assert_eq!(chars[*pos], ')', "unclosed group");
                *pos += 1;
                Node::Group(alternatives)
            }
            '[' => {
                *pos += 1;
                Node::Class(parse_class(chars, pos))
            }
            '\\' => {
                *pos += 1;
                let c = chars[*pos];
                assert_ne!(c, '\0', "dangling escape");
                *pos += 1;
                Node::Literal(escape_char(c))
            }
            '.' => {
                *pos += 1;
                // Printable ASCII stand-in for "any char".
                Node::Class(vec![(' ', '~')])
            }
            c => {
                *pos += 1;
                Node::Literal(c)
            }
        };
        seq.push(apply_quantifier(chars, pos, atom));
    }
    seq
}

fn apply_quantifier(chars: &[char], pos: &mut usize, atom: Node) -> Node {
    match chars[*pos] {
        '?' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, 1)
        }
        '*' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 0, UNBOUNDED_CAP)
        }
        '+' => {
            *pos += 1;
            Node::Repeat(Box::new(atom), 1, UNBOUNDED_CAP)
        }
        '{' => {
            *pos += 1;
            let mut min = String::new();
            while chars[*pos].is_ascii_digit() {
                min.push(chars[*pos]);
                *pos += 1;
            }
            let min: u32 = min.parse().expect("repeat lower bound");
            let max = if chars[*pos] == ',' {
                *pos += 1;
                let mut max = String::new();
                while chars[*pos].is_ascii_digit() {
                    max.push(chars[*pos]);
                    *pos += 1;
                }
                if max.is_empty() {
                    min + UNBOUNDED_CAP
                } else {
                    max.parse().expect("repeat upper bound")
                }
            } else {
                min
            };
            assert_eq!(chars[*pos], '}', "unclosed repetition");
            *pos += 1;
            Node::Repeat(Box::new(atom), min, max)
        }
        _ => atom,
    }
}

fn parse_class(chars: &[char], pos: &mut usize) -> Vec<(char, char)> {
    let mut ranges = Vec::new();
    assert_ne!(
        chars[*pos], '^',
        "negated classes unsupported in vendored proptest"
    );
    while chars[*pos] != ']' {
        assert_ne!(chars[*pos], '\0', "unclosed character class");
        let lo = if chars[*pos] == '\\' {
            *pos += 1;
            escape_char(chars[*pos])
        } else {
            chars[*pos]
        };
        *pos += 1;
        if chars[*pos] == '-' && chars[*pos + 1] != ']' {
            *pos += 1;
            let hi = if chars[*pos] == '\\' {
                *pos += 1;
                escape_char(chars[*pos])
            } else {
                chars[*pos]
            };
            *pos += 1;
            assert!(lo <= hi, "inverted class range {lo}-{hi}");
            ranges.push((lo, hi));
        } else {
            ranges.push((lo, lo));
        }
    }
    *pos += 1;
    assert!(!ranges.is_empty(), "empty character class");
    ranges
}

fn escape_char(c: char) -> char {
    match c {
        'n' => '\n',
        't' => '\t',
        'r' => '\r',
        other => other,
    }
}

fn generate_node(node: &Node, rng: &mut StdRng, out: &mut String) {
    match node {
        Node::Literal(c) => out.push(*c),
        Node::Class(ranges) => {
            let total: u32 = ranges
                .iter()
                .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                .sum();
            let mut pick = rng.gen_range(0..total);
            for &(lo, hi) in ranges {
                let span = hi as u32 - lo as u32 + 1;
                if pick < span {
                    out.push(char::from_u32(lo as u32 + pick).expect("in-range scalar"));
                    return;
                }
                pick -= span;
            }
            unreachable!("pick always lands in a range");
        }
        Node::Group(alternatives) => {
            let seq = &alternatives[rng.gen_range(0..alternatives.len())];
            for node in seq {
                generate_node(node, rng, out);
            }
        }
        Node::Repeat(atom, min, max) => {
            let count = if min == max {
                *min
            } else {
                rng.gen_range(*min..=*max)
            };
            for _ in 0..count {
                generate_node(atom, rng, out);
            }
        }
    }
}

impl Strategy for RegexStrategy {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        let mut out = String::new();
        for node in &self.seq {
            generate_node(node, rng, &mut out);
        }
        out
    }
}

/// A `&str` is a regex-shaped string strategy, as in upstream proptest.
///
/// Compiles on every generation; fine for test-sized workloads and keeps
/// `&str` usable directly inside tuples and `collection::vec`.
impl Strategy for &str {
    type Value = String;

    fn generate(&self, rng: &mut StdRng) -> String {
        RegexStrategy::new(self).generate(rng)
    }
}

/// Explicit constructor mirroring `proptest::string::string_regex`.
pub fn string_regex(pattern: &str) -> RegexStrategy {
    RegexStrategy::new(pattern)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn spice_cardlike_pattern_generates_plausible_cards() {
        let pattern =
            "[MRCLVIXD][a-z0-9]{0,4}( [a-z0-9!]{1,4}){1,6}( [A-Z]{1,5})?( [a-z]{1,2}=[0-9]{1,3}[a-z]{0,3})?";
        let strat = RegexStrategy::new(pattern);
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..200 {
            let card = strat.generate(&mut rng);
            let first = card.chars().next().expect("non-empty");
            assert!("MRCLVIXD".contains(first), "{card:?}");
            assert!(card.contains(' '), "at least one operand: {card:?}");
        }
    }

    #[test]
    fn alternation_and_quantifiers() {
        let strat = RegexStrategy::new("(ab|cd)+x?");
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..100 {
            let s = strat.generate(&mut rng);
            let trimmed = s.strip_suffix('x').unwrap_or(&s);
            assert!(!trimmed.is_empty());
            assert!(trimmed.len() % 2 == 0);
            for chunk in trimmed.as_bytes().chunks(2) {
                assert!(chunk == b"ab" || chunk == b"cd", "{s:?}");
            }
        }
    }
}
