//! Case-loop runner behind the [`proptest!`](crate::proptest) macro.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(64);
        ProptestConfig { cases }
    }
}

/// Deterministic case loop: the RNG seed derives from the test name (and an
/// optional `PROPTEST_SEED` offset), so failures reproduce across runs.
pub struct TestRunner {
    config: ProptestConfig,
    seed: u64,
    name: &'static str,
}

impl TestRunner {
    /// Creates a runner for the named test.
    pub fn new(config: ProptestConfig, name: &'static str) -> TestRunner {
        let offset: u64 = std::env::var("PROPTEST_SEED")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        TestRunner {
            config,
            seed: fnv1a(name) ^ offset,
            name,
        }
    }

    /// Runs `body` once per case with a per-case deterministic RNG; on panic,
    /// reports the case number and seed, then re-raises.
    pub fn run<F>(&mut self, mut body: F)
    where
        F: FnMut(&mut StdRng),
    {
        for case in 0..self.config.cases {
            let case_seed = self.seed.wrapping_add(case as u64);
            let mut rng = StdRng::seed_from_u64(case_seed);
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                body(&mut rng);
            }));
            if let Err(panic) = outcome {
                eprintln!(
                    "proptest {}: case {}/{} failed (case seed {case_seed}; \
                     rerun is deterministic)",
                    self.name,
                    case + 1,
                    self.config.cases,
                );
                std::panic::resume_unwind(panic);
            }
        }
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut hash: u64 = 0xcbf29ce484222325;
    for byte in s.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_cases() {
        let mut runner = TestRunner::new(ProptestConfig::with_cases(17), "runs_requested_cases");
        let mut count = 0;
        runner.run(|_rng| count += 1);
        assert_eq!(count, 17);
    }
}
