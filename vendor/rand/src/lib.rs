//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so this crate
//! re-implements the narrow slice of the `rand 0.8` API that the workspace
//! actually uses: [`rngs::StdRng`] (and `SmallRng` behind the `small_rng`
//! feature), [`SeedableRng::seed_from_u64`], [`Rng::gen`]/[`Rng::gen_range`],
//! and [`seq::SliceRandom::shuffle`].
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — deterministic,
//! fast, and statistically solid for test/data-generation purposes. It does
//! **not** reproduce upstream `rand`'s exact value streams; everything in the
//! workspace seeds explicitly and only relies on determinism, not on the
//! specific stream.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

/// Types that can be sampled uniformly from a range.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128;
                let value = uniform_u128_below(rng, span);
                (low as i128 + value as i128) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let span = (high as i128 - low as i128) as u128 + 1;
                let value = uniform_u128_below(rng, span);
                (low as i128 + value as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "gen_range: empty range");
                let unit = unit_f64(rng) as $t;
                low + unit * (high - low)
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "gen_range: empty range");
                let unit = unit_f64(rng) as $t;
                low + unit * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

/// `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Unbiased uniform value in `[0, span)` (span > 0) via rejection sampling.
fn uniform_u128_below<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    // 128-bit draw keeps the modulo bias negligible even without rejection,
    // but reject the biased tail anyway for exactness.
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
        if wide <= zone {
            return wide % span;
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Values that [`Rng::gen`] can produce.
pub trait Standard: Sized {
    /// Draws one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng)
    }
}

impl Standard for f32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng) as f32
    }
}

impl Standard for bool {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

/// High-level sampling interface, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::draw(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, RA: SampleRange<T>>(&mut self, range: RA) -> T {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from seeds.
pub trait SeedableRng: Sized {
    /// Seed type (fixed-size byte array for the provided RNGs).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs from a `u64`, expanding it with SplitMix64 like upstream.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let word = sm.next().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }

    /// Constructs from OS entropy (here: a clock-derived seed; the workspace
    /// only uses explicit seeding, this exists for API parity).
    fn from_entropy() -> Self {
        let nanos = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x9e3779b97f4a7c15);
        Self::seed_from_u64(nanos)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — the deterministic workhorse standing in for upstream's
    /// ChaCha12-based `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // All-zero state is a fixed point for xoshiro; nudge it.
            if s == [0; 4] {
                s = [
                    0x9e3779b97f4a7c15,
                    0xbf58476d1ce4e5b9,
                    0x94d049bb133111eb,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Small fast RNG; identical engine to [`StdRng`] in this stand-in.
    #[cfg(feature = "small_rng")]
    #[derive(Debug, Clone)]
    pub struct SmallRng(StdRng);

    #[cfg(feature = "small_rng")]
    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    #[cfg(feature = "small_rng")]
    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            SmallRng(StdRng::from_seed(seed))
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::RngCore;

    /// Slice shuffling and selection.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly random element, `None` when empty.
        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u128_below(rng, i as u128 + 1) as usize;
                self.swap(i, j);
            }
        }

        fn choose<'a, R: RngCore + ?Sized>(&'a self, rng: &mut R) -> Option<&'a T> {
            if self.is_empty() {
                None
            } else {
                let idx = super::uniform_u128_below(rng, self.len() as u128) as usize;
                self.get(idx)
            }
        }
    }
}

/// Common imports, mirroring `rand::prelude`.
pub mod prelude {
    #[cfg(feature = "small_rng")]
    pub use crate::rngs::SmallRng;
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_across_reseeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..32 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: f64 = rng.gen_range(-2.5..2.5);
            assert!((-2.5..2.5).contains(&y));
            let z: f64 = rng.gen_range(0.0..=1.0);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
