//! Offline vendored stand-in for the `serde` facade.
//!
//! The workspace only uses `serde` for `#[derive(Serialize, Deserialize)]`
//! annotations — no serializer is ever invoked (checkpoints and exports use
//! hand-rolled text formats). This crate provides the two marker traits and
//! re-exports no-op derive macros so those annotations keep compiling without
//! network access to crates.io.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

/// Owned-deserialization marker, for API parity.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

impl<T> DeserializeOwned for T where T: for<'de> Deserialize<'de> {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
