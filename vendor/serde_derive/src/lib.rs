//! No-op `Serialize` / `Deserialize` derives for the vendored serde facade.
//!
//! The workspace never calls a serializer, so the derives expand to nothing:
//! the annotation stays valid, the marker traits stay unimplemented, and any
//! future attempt to actually serialize fails to compile loudly instead of
//! silently producing garbage.

use proc_macro::TokenStream;

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; accepts and ignores `#[serde(...)]` attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
